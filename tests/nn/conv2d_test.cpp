#include <gtest/gtest.h>

#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "support/gradcheck.hpp"
#include "support/property.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::Conv2d;
using gsfl::nn::Relu;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
namespace prop = gsfl::test::prop;
using FusedConvRelu = prop::FusedRelu<Conv2d>;

/// Direct (non-im2col) reference convolution for one output element.
float naive_conv_at(const Tensor& x, const Tensor& w, const Tensor& b,
                    std::size_t n, std::size_t oc, std::size_t oy,
                    std::size_t ox, std::size_t kernel, std::size_t stride,
                    std::size_t pad) {
  const std::size_t in_c = x.shape()[1];
  const std::size_t in_h = x.shape()[2];
  const std::size_t in_w = x.shape()[3];
  float acc = b.at(oc);
  for (std::size_t c = 0; c < in_c; ++c) {
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        const auto iy = static_cast<std::ptrdiff_t>(oy * stride + ky) -
                        static_cast<std::ptrdiff_t>(pad);
        const auto ix = static_cast<std::ptrdiff_t>(ox * stride + kx) -
                        static_cast<std::ptrdiff_t>(pad);
        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h) || ix < 0 ||
            ix >= static_cast<std::ptrdiff_t>(in_w)) {
          continue;
        }
        // Weight layout: (out_c, in_c·k·k) with (c, ky, kx) row-major.
        const std::size_t widx = (c * kernel + ky) * kernel + kx;
        acc += w.at2(oc, widx) *
               x.at4(n, c, static_cast<std::size_t>(iy),
                     static_cast<std::size_t>(ix));
      }
    }
  }
  return acc;
}

TEST(Conv2d, ForwardMatchesNaiveReference) {
  Rng rng(1);
  Conv2d layer(2, 3, 3, 1, 1, rng);
  const auto x = Tensor::uniform(Shape{2, 2, 5, 5}, rng, -1, 1);
  const auto y = layer.forward(x, true);
  ASSERT_EQ(y.shape(), Shape({2, 3, 5, 5}));
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t oc = 0; oc < 3; ++oc) {
      for (std::size_t oy = 0; oy < 5; ++oy) {
        for (std::size_t ox = 0; ox < 5; ++ox) {
          EXPECT_NEAR(y.at4(n, oc, oy, ox),
                      naive_conv_at(x, layer.weight(), layer.bias(), n, oc,
                                    oy, ox, 3, 1, 1),
                      1e-4);
        }
      }
    }
  }
}

TEST(Conv2d, StridedNoPadGeometry) {
  Rng rng(2);
  Conv2d layer(1, 2, 3, 2, 0, rng);
  const auto x = Tensor::uniform(Shape{1, 1, 7, 9}, rng, -1, 1);
  const auto y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 2, 3, 4}));
  // Spot-check one strided element against the reference.
  EXPECT_NEAR(y.at4(0, 1, 2, 3),
              naive_conv_at(x, layer.weight(), layer.bias(), 0, 1, 2, 3, 3,
                            2, 0),
              1e-4);
}

TEST(Conv2d, KnownAveragingKernel) {
  Rng rng(3);
  Conv2d layer(1, 1, 3, 1, 0, rng);
  layer.weight().fill(1.0f / 9.0f);
  layer.bias().fill(0.0f);
  const auto x = Tensor::full(Shape{1, 1, 3, 3}, 9.0f);
  const auto y = layer.forward(x, true);
  ASSERT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_NEAR(y.at(0), 9.0f, 1e-5);
}

TEST(Conv2d, InputGradientCheck) {
  Rng rng(4);
  Conv2d layer(2, 2, 3, 1, 1, rng);
  auto input = Tensor::uniform(Shape{1, 2, 4, 4}, rng, -1, 1);
  gsfl::test::check_input_gradient(layer, input, rng);
}

TEST(Conv2d, ParameterGradientCheck) {
  Rng rng(5);
  Conv2d layer(1, 2, 3, 1, 0, rng);
  auto input = Tensor::uniform(Shape{2, 1, 5, 5}, rng, -1, 1);
  gsfl::test::check_parameter_gradients(layer, input, rng);
}

TEST(Conv2d, StridedGradientCheck) {
  Rng rng(6);
  Conv2d layer(1, 1, 3, 2, 1, rng);
  auto input = Tensor::uniform(Shape{1, 1, 6, 6}, rng, -1, 1);
  gsfl::test::check_input_gradient(layer, input, rng);
  gsfl::test::check_parameter_gradients(layer, input, rng);
}

TEST(Conv2d, ChannelMismatchThrows) {
  Rng rng(7);
  Conv2d layer(3, 4, 3, 1, 1, rng);
  EXPECT_THROW((void)layer.forward(Tensor(Shape{1, 2, 8, 8}), true),
               std::invalid_argument);
}

TEST(Conv2d, BackwardWithoutForwardThrows) {
  Rng rng(8);
  Conv2d layer(1, 1, 3, 1, 1, rng);
  EXPECT_THROW((void)layer.backward(Tensor(Shape{1, 1, 4, 4})),
               std::invalid_argument);
}

TEST(Conv2d, NameAndShapes) {
  Rng rng(9);
  Conv2d layer(3, 8, 3, 1, 1, rng);
  EXPECT_EQ(layer.name(), "conv2d(3->8,k3,s1,p1)");
  EXPECT_EQ(layer.output_shape(Shape{4, 3, 16, 16}),
            Shape({4, 8, 16, 16}));
  EXPECT_EQ(layer.parameter_count(), 8u * 27u + 8u);
}

TEST(Conv2d, FlopsScaleWithSpatialSizeAndBatch) {
  Rng rng(10);
  Conv2d layer(3, 8, 3, 1, 1, rng);
  const auto small = layer.flops(Shape{1, 3, 8, 8});
  const auto big = layer.flops(Shape{1, 3, 16, 16});
  const auto batched = layer.flops(Shape{2, 3, 8, 8});
  EXPECT_NEAR(static_cast<double>(big.forward) / small.forward, 4.0, 0.1);
  EXPECT_EQ(batched.forward, 2 * small.forward);
  EXPECT_GT(small.backward, small.forward);
}

TEST(Conv2d, CloneProducesIdenticalOutputs) {
  Rng rng(11);
  Conv2d layer(2, 2, 3, 1, 1, rng);
  auto clone = layer.clone();
  const auto x = Tensor::uniform(Shape{1, 2, 6, 6}, rng, -1, 1);
  EXPECT_EQ(layer.forward(x, true), clone->forward(x, true));
}

// The batched layer must reproduce the per-sample im2col + GEMM pipeline it
// replaced: one GEMM per image over that image's column matrix. Forward is
// bitwise-equal — the batched GEMM folds k in the same ascending order per
// output element; gradients agree to accumulation-order tolerance (the
// batch reduction became the GEMM's k fold).
TEST(Conv2d, BatchedForwardMatchesPerSampleGemmBitwise) {
  Rng rng(21);
  const std::size_t batch = 5;  // not a register-block multiple
  Conv2d layer(3, 4, 3, 1, 1, rng);
  const auto x = Tensor::uniform(Shape{batch, 3, 6, 6}, rng, -1, 1);
  const auto y = layer.forward(x, true);

  const gsfl::tensor::ConvGeometry geom{
      .in_channels = 3, .in_h = 6, .in_w = 6, .kernel = 3, .stride = 1,
      .pad = 1};
  const std::size_t positions = geom.out_positions();
  for (std::size_t n = 0; n < batch; ++n) {
    const auto columns = gsfl::tensor::im2col(x, n, geom);
    Tensor per_sample(Shape{4, positions});
    gsfl::tensor::gemm_raw(4, geom.patch_size(), positions, 1.0f,
                           layer.weight().data().data(),
                           columns.data().data(), 0.0f,
                           per_sample.data().data());
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t p = 0; p < positions; ++p) {
        const float expected = per_sample.at2(c, p) + layer.bias().at(c);
        EXPECT_EQ(y.at(n * 4 * positions + c * positions + p), expected)
            << "n=" << n << " c=" << c << " p=" << p;
      }
    }
  }
}

// The fused forward must be bitwise identical to the unfused conv forward
// followed by a standalone Relu — at every thread count (the batch loop
// parallelizes over samples, the relu clamp rides each sample's epilogue).
TEST(Conv2d, FusedForwardMatchesUnfusedReluBitwise) {
  Rng rng(24);
  Conv2d layer(3, 8, 3, 1, 1, rng);
  const auto x = Tensor::uniform(Shape{6, 3, 8, 8}, rng, -1, 1);

  gsfl::common::set_global_threads(1);
  Relu relu;
  const auto unfused = relu.forward(layer.forward(x, true), true);
  prop::for_each_thread_count([&](std::size_t threads) {
    const auto fused = layer.forward_fused_relu(x, true);
    ASSERT_TRUE(prop::bitwise_equal(fused, unfused))
        << "threads=" << threads;
  });
}

// And the fused backward must reproduce the unfused composition's input and
// parameter gradients bitwise: the y>0 mask equals the Relu derivative.
TEST(Conv2d, FusedBackwardMatchesUnfusedReluBitwise) {
  Rng rng(25);
  Conv2d fused(2, 3, 3, 1, 1, rng);
  Conv2d unfused = fused;  // identical weights
  Relu relu;
  const auto x = Tensor::uniform(Shape{3, 2, 5, 5}, rng, -1, 1);
  Rng grng(26);
  const auto dy = Tensor::uniform(Shape{3, 3, 5, 5}, grng, -1, 1);

  unfused.zero_grad();
  const auto hidden = unfused.forward(x, true);
  (void)relu.forward(hidden, true);
  const auto dx_unfused = unfused.backward(relu.backward(dy));

  fused.zero_grad();
  (void)fused.forward_fused_relu(x, true);
  const auto dx_fused = fused.backward_fused_relu(dy);

  EXPECT_TRUE(prop::bitwise_equal(dx_fused, dx_unfused));
  EXPECT_TRUE(
      prop::bitwise_equal(*fused.gradients()[0], *unfused.gradients()[0]));
  EXPECT_TRUE(
      prop::bitwise_equal(*fused.gradients()[1], *unfused.gradients()[1]));
}

// The fused backward folds the dy relu-mask into the per-sample dx pack and
// the dW/db restage copy (no masked-dy tensor). Bitwise equal to the
// standalone Relu-derivative sequence across the thread × pack-strategy
// matrix; prop::bitwise_equal reports mismatches in hexfloat.
TEST(Conv2d, FusedBackwardSweepAcrossThreadsAndPackStrategies) {
  Rng rng(27);
  Conv2d fused(3, 5, 3, 1, 1, rng);
  Conv2d unfused = fused;  // identical weights
  Relu relu;
  const auto x = Tensor::uniform(Shape{4, 3, 6, 6}, rng, -1, 1);
  Rng grng(28);
  const auto dy = Tensor::uniform(Shape{4, 5, 6, 6}, grng, -1, 1);

  gsfl::common::set_global_threads(1);
  unfused.zero_grad();
  const auto hidden = unfused.forward(x, true);
  (void)relu.forward(hidden, true);
  const auto dx_ref = unfused.backward(relu.backward(dy));
  const auto dw_ref = *unfused.gradients()[0];
  const auto db_ref = *unfused.gradients()[1];

  prop::for_each_pack_strategy([&](gsfl::tensor::PackStrategy strategy) {
    prop::for_each_thread_count([&](std::size_t threads) {
      fused.zero_grad();
      (void)fused.forward_fused_relu(x, true);
      const auto dx = fused.backward_fused_relu(dy);
      ASSERT_TRUE(prop::bitwise_equal(dx, dx_ref))
          << "dx strategy=" << prop::pack_strategy_name(strategy)
          << " threads=" << threads;
      ASSERT_TRUE(prop::bitwise_equal(*fused.gradients()[0], dw_ref))
          << "dW strategy=" << prop::pack_strategy_name(strategy)
          << " threads=" << threads;
      ASSERT_TRUE(prop::bitwise_equal(*fused.gradients()[1], db_ref))
          << "db strategy=" << prop::pack_strategy_name(strategy)
          << " threads=" << threads;
    });
  });
}

TEST(Conv2d, FusedReluInputGradientCheck) {
  Rng rng(18);  // seed chosen so every pre-activation clears the kink margin
  Conv2d layer(2, 2, 3, 1, 1, rng);
  auto input = Tensor::uniform(Shape{1, 2, 4, 4}, rng, -1, 1);
  // Gradcheck differentiates across the relu kink, so the pre-activations
  // must sit clear of 0 relative to the finite-difference step; assert the
  // margin so a drifting seed fails here and not with a flaky mismatch.
  const auto preact = layer.forward(input, true);
  float margin = 1e9f;
  for (const float v : preact.data()) margin = std::min(margin, std::abs(v));
  ASSERT_GT(margin, 0.05f) << "pick a different seed";
  FusedConvRelu fused(layer);
  gsfl::test::check_input_gradient(fused, input, rng);
}

TEST(Conv2d, FusedReluParameterGradientCheck) {
  Rng rng(17);  // seed chosen so every pre-activation clears the kink margin
  Conv2d layer(1, 2, 3, 1, 0, rng);
  auto input = Tensor::uniform(Shape{1, 1, 5, 5}, rng, -1, 1);
  const auto preact = layer.forward(input, true);
  float margin = 1e9f;
  for (const float v : preact.data()) margin = std::min(margin, std::abs(v));
  ASSERT_GT(margin, 0.05f) << "pick a different seed";
  FusedConvRelu fused(layer);
  gsfl::test::check_parameter_gradients(fused, input, rng);
}

TEST(Conv2d, FusedBackwardWithoutFusedForwardThrows) {
  Rng rng(28);
  Conv2d layer(1, 1, 3, 1, 1, rng);
  (void)layer.forward(Tensor::ones(Shape{1, 1, 4, 4}), true);
  EXPECT_THROW(
      (void)layer.backward_fused_relu(Tensor::ones(Shape{1, 1, 4, 4})),
      std::invalid_argument);
}

TEST(Conv2d, BatchedBackwardMatchesPerSampleGemm) {
  Rng rng(22);
  const std::size_t batch = 3;
  Conv2d layer(2, 3, 3, 1, 1, rng);
  const auto x = Tensor::uniform(Shape{batch, 2, 5, 5}, rng, -1, 1);
  Rng grng(23);
  const auto dy = Tensor::uniform(Shape{batch, 3, 5, 5}, grng, -1, 1);

  layer.zero_grad();
  (void)layer.forward(x, true);
  const auto dx = layer.backward(dy);

  const gsfl::tensor::ConvGeometry geom{
      .in_channels = 2, .in_h = 5, .in_w = 5, .kernel = 3, .stride = 1,
      .pad = 1};
  const std::size_t positions = geom.out_positions();
  const std::size_t patch = geom.patch_size();
  Tensor dw_ref(Shape{3, patch});
  Tensor db_ref(Shape{3});
  Tensor dx_ref(x.shape());
  const auto wt = gsfl::tensor::transpose(layer.weight());
  for (std::size_t n = 0; n < batch; ++n) {
    const float* dyn = dy.data().data() + n * 3 * positions;
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t p = 0; p < positions; ++p) {
        db_ref.at(c) += dyn[c * positions + p];
      }
    }
    const auto columns = gsfl::tensor::im2col(x, n, geom);
    const auto columns_t =
        gsfl::tensor::transpose(columns);
    gsfl::tensor::gemm_raw(3, positions, patch, 1.0f, dyn,
                           columns_t.data().data(), 1.0f,
                           dw_ref.data().data());
    Tensor dcols(Shape{patch, positions});
    gsfl::tensor::gemm_raw(patch, 3, positions, 1.0f, wt.data().data(), dyn,
                           0.0f, dcols.data().data());
    gsfl::tensor::col2im_accumulate(dcols, geom, dx_ref, n);
  }
  for (std::size_t i = 0; i < dw_ref.numel(); ++i) {
    EXPECT_NEAR(layer.gradients()[0]->at(i), dw_ref.at(i), 1e-4);
  }
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(layer.gradients()[1]->at(c), db_ref.at(c), 1e-4);
  }
  for (std::size_t i = 0; i < dx_ref.numel(); ++i) {
    EXPECT_NEAR(dx.at(i), dx_ref.at(i), 1e-4);
  }
}

TEST(Conv2d, GradientAccumulationAcrossBatches) {
  Rng rng(12);
  Conv2d layer(1, 1, 3, 1, 1, rng);
  const auto x = Tensor::uniform(Shape{1, 1, 4, 4}, rng, -1, 1);
  const auto g = Tensor::ones(Shape{1, 1, 4, 4});
  layer.zero_grad();
  (void)layer.forward(x, true);
  (void)layer.backward(g);
  const Tensor once = *layer.gradients()[0];
  (void)layer.forward(x, true);
  (void)layer.backward(g);
  for (std::size_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(layer.gradients()[0]->at(i), 2.0f * once.at(i), 1e-5);
  }
}

}  // namespace
