#include <gtest/gtest.h>

#include "gsfl/nn/loss.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/optimizer.hpp"
#include "gsfl/nn/split.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::CnnConfig;
using gsfl::nn::cut_layer_count;
using gsfl::nn::deep_cnn_config;
using gsfl::nn::make_gtsrb_cnn;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(DeepModel, ThreeBlockTopology) {
  Rng rng(1);
  const auto config = deep_cnn_config(32, 43);
  auto model = make_gtsrb_cnn(config, rng);
  EXPECT_EQ(model.size(), 13u);  // 3 × (conv relu pool) + flatten d r d
  EXPECT_EQ(model.size(), cut_layer_count(config));
  EXPECT_EQ(model.output_shape(Shape{2, 3, 32, 32}), Shape({2, 43}));
}

TEST(DeepModel, MoreFlopsThanTwoBlockModel) {
  Rng rng(2);
  CnnConfig shallow;
  const auto deep = deep_cnn_config(32, 43);
  auto shallow_model = make_gtsrb_cnn(shallow, rng);
  auto deep_model = make_gtsrb_cnn(deep, rng);
  const Shape input{1, 3, 32, 32};
  EXPECT_GT(deep_model.flops(input).forward,
            2 * shallow_model.flops(input).forward);
  EXPECT_GT(deep_model.parameter_count(), shallow_model.parameter_count());
}

TEST(DeepModel, RequiresImageDivisibleByEight) {
  Rng rng(3);
  auto config = deep_cnn_config(32, 10);
  config.image_size = 12;  // divides by 4 but not by 8
  EXPECT_THROW(make_gtsrb_cnn(config, rng), std::invalid_argument);
}

TEST(DeepModel, SplitsAtEveryCut) {
  Rng rng(4);
  const auto config = deep_cnn_config(16, 6);
  const auto model = make_gtsrb_cnn(config, rng);
  auto reference = model;
  const auto x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, 0, 1);
  const auto expected = reference.forward(x, false);
  for (std::size_t cut = 0; cut <= model.size(); ++cut) {
    gsfl::nn::SplitModel split(model, cut);
    EXPECT_EQ(split.forward(x, false), expected) << "cut " << cut;
  }
}

TEST(DeepModel, TrainsOnTinyTask) {
  Rng rng(5);
  const auto config = deep_cnn_config(16, 3);
  auto model = make_gtsrb_cnn(config, rng);
  gsfl::nn::Adam optimizer(0.005);
  optimizer.attach(model.parameters(), model.gradients());

  // Three fixed random "class prototypes": the model must memorize them.
  const auto x = Tensor::uniform(Shape{3, 3, 16, 16}, rng, 0, 1);
  const std::int32_t labels[] = {0, 1, 2};
  double loss_value = 0.0;
  for (int step = 0; step < 60; ++step) {
    model.zero_grad();
    const auto logits = model.forward(x, true);
    const auto loss = gsfl::nn::softmax_cross_entropy(logits, labels);
    (void)model.backward(loss.grad_logits);
    optimizer.step();
    loss_value = loss.loss;
  }
  EXPECT_LT(loss_value, 0.1);
}

TEST(DeepModel, BatchNormVariantCutCountConsistent) {
  Rng rng(6);
  auto config = deep_cnn_config(16, 4);
  config.batch_norm = true;
  config.dropout = 0.2f;
  auto model = make_gtsrb_cnn(config, rng);
  EXPECT_EQ(model.size(), cut_layer_count(config));
}

}  // namespace
