#include <gtest/gtest.h>

#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/dense.hpp"
#include "support/gradcheck.hpp"
#include "support/property.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::Dense;
using gsfl::nn::Relu;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
namespace prop = gsfl::test::prop;
using FusedDenseRelu = prop::FusedRelu<Dense>;

TEST(Dense, ForwardMatchesHandComputation) {
  Rng rng(1);
  Dense layer(2, 3, rng);
  layer.weight() = Tensor(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  layer.bias() = Tensor(Shape{3}, {0.5f, -0.5f, 1.0f});

  const Tensor x(Shape{1, 2}, {10, 20});
  const auto y = layer.forward(x, true);
  ASSERT_EQ(y.shape(), Shape({1, 3}));
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1 * 10 + 2 * 20 + 0.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 3 * 10 + 4 * 20 - 0.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 2), 5 * 10 + 6 * 20 + 1.0f);
}

TEST(Dense, ForwardBatches) {
  Rng rng(2);
  Dense layer(3, 2, rng);
  const auto x = Tensor::uniform(Shape{5, 3}, rng, -1, 1);
  const auto y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({5, 2}));
  // Row independence: forwarding a single row gives the same answer.
  const auto row = x.slice0(2, 3);
  const auto y_row = layer.forward(row, true);
  EXPECT_NEAR(y_row.at2(0, 0), y.at2(2, 0), 1e-6);
  EXPECT_NEAR(y_row.at2(0, 1), y.at2(2, 1), 1e-6);
}

TEST(Dense, InputGradientCheck) {
  Rng rng(3);
  Dense layer(4, 3, rng);
  auto input = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  gsfl::test::check_input_gradient(layer, input, rng);
}

TEST(Dense, ParameterGradientCheck) {
  Rng rng(4);
  Dense layer(3, 2, rng);
  auto input = Tensor::uniform(Shape{3, 3}, rng, -1, 1);
  gsfl::test::check_parameter_gradients(layer, input, rng);
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(5);
  Dense layer(2, 2, rng);
  const auto x = Tensor::uniform(Shape{1, 2}, rng, -1, 1);
  const auto g = Tensor::ones(Shape{1, 2});

  layer.zero_grad();
  (void)layer.forward(x, true);
  (void)layer.backward(g);
  const Tensor once = *layer.gradients()[0];

  (void)layer.forward(x, true);
  (void)layer.backward(g);
  const Tensor twice = *layer.gradients()[0];

  for (std::size_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(twice.at(i), 2.0f * once.at(i), 1e-6);
  }
}

TEST(Dense, ZeroGradClears) {
  Rng rng(6);
  Dense layer(2, 2, rng);
  (void)layer.forward(Tensor::ones(Shape{1, 2}), true);
  (void)layer.backward(Tensor::ones(Shape{1, 2}));
  layer.zero_grad();
  for (const auto* g : layer.gradients()) {
    for (const float v : g->data()) EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(Dense, BackwardWithoutForwardThrows) {
  Rng rng(7);
  Dense layer(2, 2, rng);
  EXPECT_THROW((void)layer.backward(Tensor::ones(Shape{1, 2})),
               std::invalid_argument);
}

TEST(Dense, InputWidthMismatchThrows) {
  Rng rng(8);
  Dense layer(3, 2, rng);
  EXPECT_THROW((void)layer.forward(Tensor(Shape{1, 4}), true),
               std::invalid_argument);
}

TEST(Dense, OutputShapeAndName) {
  Rng rng(9);
  Dense layer(5, 7, rng);
  EXPECT_EQ(layer.output_shape(Shape{3, 5}), Shape({3, 7}));
  EXPECT_EQ(layer.name(), "dense(5->7)");
  EXPECT_EQ(layer.parameter_count(), 5u * 7u + 7u);
}

TEST(Dense, FlopCountScalesWithBatch) {
  Rng rng(10);
  Dense layer(8, 4, rng);
  const auto f1 = layer.flops(Shape{1, 8});
  const auto f4 = layer.flops(Shape{4, 8});
  EXPECT_EQ(f4.forward, 4 * f1.forward);
  EXPECT_EQ(f4.backward, 4 * f1.backward);
  EXPECT_GT(f1.backward, f1.forward);  // two GEMMs vs one
}

TEST(Dense, CloneIsDeepAndIdentical) {
  Rng rng(11);
  Dense layer(3, 3, rng);
  auto clone = layer.clone();
  const auto x = Tensor::uniform(Shape{2, 3}, rng, -1, 1);
  const auto y1 = layer.forward(x, true);
  const auto y2 = clone->forward(x, true);
  EXPECT_EQ(y1, y2);

  // Mutating the clone's weights must not affect the original.
  clone->parameters()[0]->fill(0.0f);
  const auto y3 = layer.forward(x, true);
  EXPECT_EQ(y1, y3);
}

// The fused forward must be bitwise identical to the unfused dense forward
// followed by a standalone Relu — at every thread count.
TEST(Dense, FusedForwardMatchesUnfusedReluBitwise) {
  Rng rng(30);
  Dense layer(64, 48, rng);
  const auto x = Tensor::uniform(Shape{32, 64}, rng, -1, 1);

  gsfl::common::set_global_threads(1);
  Relu relu;
  const auto unfused = relu.forward(layer.forward(x, true), true);
  prop::for_each_thread_count([&](std::size_t threads) {
    const auto fused = layer.forward_fused_relu(x, true);
    ASSERT_TRUE(prop::bitwise_equal(fused, unfused))
        << "threads=" << threads;
  });
}

// And the fused backward must reproduce the unfused composition's input and
// parameter gradients bitwise: the y>0 mask equals the Relu derivative.
TEST(Dense, FusedBackwardMatchesUnfusedReluBitwise) {
  Rng rng(31);
  Dense fused(16, 12, rng);
  Dense unfused = fused;  // identical weights
  Relu relu;
  const auto x = Tensor::uniform(Shape{8, 16}, rng, -1, 1);
  Rng grng(32);
  const auto dy = Tensor::uniform(Shape{8, 12}, grng, -1, 1);

  unfused.zero_grad();
  const auto hidden = unfused.forward(x, true);
  (void)relu.forward(hidden, true);
  const auto dx_unfused = unfused.backward(relu.backward(dy));

  fused.zero_grad();
  (void)fused.forward_fused_relu(x, true);
  const auto dx_fused = fused.backward_fused_relu(dy);

  EXPECT_TRUE(prop::bitwise_equal(dx_fused, dx_unfused));
  EXPECT_TRUE(
      prop::bitwise_equal(*fused.gradients()[0], *unfused.gradients()[0]));
  EXPECT_TRUE(
      prop::bitwise_equal(*fused.gradients()[1], *unfused.gradients()[1]));
}

// The fused backward folds the dy relu-mask into the dW/dx panel packing
// and the db fold (no masked-dy tensor). It must stay bitwise equal to the
// standalone Relu-derivative sequence across the whole thread × pack
// strategy matrix — the dx GEMM here k-blocks (out = 300 > KC), so the
// masked pack is exercised under both the up-front and interleaved
// schedules. prop::bitwise_equal reports mismatches in hexfloat.
TEST(Dense, FusedBackwardSweepAcrossThreadsAndPackStrategies) {
  Rng rng(38);
  Dense fused(64, 300, rng);
  Dense unfused = fused;  // identical weights
  Relu relu;
  const auto x = Tensor::uniform(Shape{24, 64}, rng, -1, 1);
  Rng grng(39);
  const auto dy = Tensor::uniform(Shape{24, 300}, grng, -1, 1);

  gsfl::common::set_global_threads(1);
  unfused.zero_grad();
  const auto hidden = unfused.forward(x, true);
  (void)relu.forward(hidden, true);
  const auto dx_ref = unfused.backward(relu.backward(dy));
  const auto dw_ref = *unfused.gradients()[0];
  const auto db_ref = *unfused.gradients()[1];

  prop::for_each_pack_strategy([&](gsfl::tensor::PackStrategy strategy) {
    prop::for_each_thread_count([&](std::size_t threads) {
      fused.zero_grad();
      (void)fused.forward_fused_relu(x, true);
      const auto dx = fused.backward_fused_relu(dy);
      ASSERT_TRUE(prop::bitwise_equal(dx, dx_ref))
          << "dx strategy=" << prop::pack_strategy_name(strategy)
          << " threads=" << threads;
      ASSERT_TRUE(prop::bitwise_equal(*fused.gradients()[0], dw_ref))
          << "dW strategy=" << prop::pack_strategy_name(strategy)
          << " threads=" << threads;
      ASSERT_TRUE(prop::bitwise_equal(*fused.gradients()[1], db_ref))
          << "db strategy=" << prop::pack_strategy_name(strategy)
          << " threads=" << threads;
    });
  });
}

TEST(Dense, FusedReluInputGradientCheck) {
  Rng rng(33);
  Dense layer(4, 3, rng);
  auto input = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  // Gradcheck differentiates across the relu kink, so the pre-activations
  // must sit clear of 0 relative to the finite-difference step; assert the
  // margin so a drifting seed fails here and not with a flaky mismatch.
  const auto preact = layer.forward(input, true);
  float margin = 1e9f;
  for (const float v : preact.data()) margin = std::min(margin, std::abs(v));
  ASSERT_GT(margin, 0.05f) << "pick a different seed";
  FusedDenseRelu fused(layer);
  gsfl::test::check_input_gradient(fused, input, rng);
}

TEST(Dense, FusedReluParameterGradientCheck) {
  Rng rng(36);
  Dense layer(3, 2, rng);
  auto input = Tensor::uniform(Shape{3, 3}, rng, -1, 1);
  const auto preact = layer.forward(input, true);
  float margin = 1e9f;
  for (const float v : preact.data()) margin = std::min(margin, std::abs(v));
  ASSERT_GT(margin, 0.05f) << "pick a different seed";
  FusedDenseRelu fused(layer);
  gsfl::test::check_parameter_gradients(fused, input, rng);
}

TEST(Dense, FusedBackwardWithoutFusedForwardThrows) {
  Rng rng(37);
  Dense layer(2, 2, rng);
  (void)layer.forward(Tensor::ones(Shape{1, 2}), true);
  EXPECT_THROW((void)layer.backward_fused_relu(Tensor::ones(Shape{1, 2})),
               std::invalid_argument);
  // An eval-mode fused forward invalidates the cache: backward fails loudly
  // instead of differentiating against an eval batch.
  (void)layer.forward_fused_relu(Tensor::ones(Shape{1, 2}), false);
  EXPECT_THROW((void)layer.backward_fused_relu(Tensor::ones(Shape{1, 2})),
               std::invalid_argument);
}

TEST(Dense, HeInitializationScale) {
  Rng rng(12);
  Dense layer(1000, 50, rng);
  // He stddev = sqrt(2/1000) ≈ 0.0447.
  double sq = 0.0;
  const auto w = layer.weight().data();
  for (const float v : w) sq += static_cast<double>(v) * v;
  const double stddev = std::sqrt(sq / static_cast<double>(w.size()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 1000.0), 0.005);
  // Bias starts at zero.
  for (const float b : layer.bias().data()) EXPECT_FLOAT_EQ(b, 0.0f);
}

// The int8 forward path (GemmPrecision::kInt8) is an opt-in serving knob:
// close to the f32 forward numerically, bitwise reproducible across the
// thread matrix (exact int32 accumulation), and never touching backward.
TEST(Dense, Int8ForwardIsCloseToF32) {
  Rng rng(40);
  Dense layer(64, 32, rng);
  const auto x = Tensor::uniform(Shape{16, 64}, rng, -1, 1);
  const auto f32 = layer.forward(x, false);
  layer.set_forward_precision(gsfl::tensor::GemmPrecision::kInt8);
  EXPECT_EQ(layer.forward_precision(), gsfl::tensor::GemmPrecision::kInt8);
  const auto q8 = layer.forward(x, false);
  float max_abs = 1e-6f;
  for (const float v : f32.data()) max_abs = std::max(max_abs, std::abs(v));
  for (std::size_t i = 0; i < f32.numel(); ++i) {
    EXPECT_NEAR(q8.at(i), f32.at(i), 0.02f * max_abs) << "flat index " << i;
  }
}

TEST(Dense, Int8ForwardIsBitwiseThreadInvariant) {
  Rng rng(41);
  Dense layer(48, 40, rng);
  layer.set_forward_precision(gsfl::tensor::GemmPrecision::kInt8);
  const auto x = Tensor::uniform(Shape{9, 48}, rng, -1, 1);
  gsfl::common::set_global_threads(1);
  const auto reference = layer.forward(x, false);
  prop::for_each_thread_count([&](std::size_t threads) {
    ASSERT_TRUE(prop::bitwise_equal(layer.forward(x, false), reference))
        << "threads=" << threads;
  });
}

TEST(Dense, Int8ForwardPrecisionSurvivesClone) {
  Rng rng(42);
  Dense layer(12, 8, rng);
  layer.set_forward_precision(gsfl::tensor::GemmPrecision::kInt8);
  const auto clone = layer.clone();
  const auto x = Tensor::uniform(Shape{3, 12}, rng, -1, 1);
  EXPECT_TRUE(
      prop::bitwise_equal(clone->forward(x, false), layer.forward(x, false)));
}

TEST(Dense, Int8ForwardLeavesBackwardInF32) {
  // Gradcheck differentiates the f32 forward; with the int8 knob set the
  // backward must still be the exact f32 gradients of the f32 graph —
  // training arithmetic is untouched by the serving precision.
  Rng rng(43);
  Dense f32_layer(4, 3, rng);
  Dense q8_layer = f32_layer;
  q8_layer.set_forward_precision(gsfl::tensor::GemmPrecision::kInt8);
  const auto x = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  const auto dy = Tensor::ones(Shape{2, 3});

  f32_layer.zero_grad();
  (void)f32_layer.forward(x, true);
  const auto dx_f32 = f32_layer.backward(dy);

  q8_layer.zero_grad();
  (void)q8_layer.forward(x, true);
  const auto dx_q8 = q8_layer.backward(dy);

  EXPECT_TRUE(prop::bitwise_equal(dx_q8, dx_f32));
  EXPECT_TRUE(prop::bitwise_equal(*q8_layer.gradients()[0],
                                  *f32_layer.gradients()[0]));
}

}  // namespace
