#include <gtest/gtest.h>

#include "gsfl/nn/dropout.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::Dropout;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(1);
  Dropout dropout(0.5f, rng);
  const auto x = Tensor::uniform(Shape{4, 8}, rng, -1, 1);
  EXPECT_EQ(dropout.forward(x, /*train=*/false), x);
}

TEST(Dropout, ZeroProbabilityIsIdentityEvenInTraining) {
  Rng rng(2);
  Dropout dropout(0.0f, rng);
  const auto x = Tensor::uniform(Shape{4, 8}, rng, -1, 1);
  EXPECT_EQ(dropout.forward(x, /*train=*/true), x);
}

TEST(Dropout, TrainingZeroesApproximatelyPFraction) {
  Rng rng(3);
  const float p = 0.3f;
  Dropout dropout(p, rng);
  const auto x = Tensor::ones(Shape{100, 100});
  const auto y = dropout.forward(x, true);
  std::size_t zeros = 0;
  for (const float v : y.data()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, p, 0.02);
}

TEST(Dropout, SurvivorsScaledByInverseKeep) {
  Rng rng(4);
  const float p = 0.25f;
  Dropout dropout(p, rng);
  const auto x = Tensor::ones(Shape{50, 50});
  const auto y = dropout.forward(x, true);
  const float expected = 1.0f / (1.0f - p);
  for (const float v : y.data()) {
    EXPECT_TRUE(v == 0.0f || std::abs(v - expected) < 1e-6f);
  }
  // Inverted dropout preserves the expectation.
  EXPECT_NEAR(y.mean(), 1.0, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(5);
  Dropout dropout(0.5f, rng);
  const auto x = Tensor::ones(Shape{10, 10});
  const auto y = dropout.forward(x, true);
  const auto g = dropout.backward(Tensor::ones(Shape{10, 10}));
  // Gradient passes exactly where the activation passed.
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(g.at(i), y.at(i));
  }
}

TEST(Dropout, EvalBackwardThrows) {
  Rng rng(6);
  Dropout dropout(0.5f, rng);
  const auto x = Tensor::ones(Shape{3, 3});
  const Tensor g(Shape{3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  // A backward whose forward ran in eval mode would differentiate the
  // identity while training runs the masked scale — fail loudly instead of
  // silently passing the gradient through.
  (void)dropout.forward(x, false);
  EXPECT_THROW((void)dropout.backward(g), std::invalid_argument);
  // A training forward *after* the eval pass re-arms backward…
  (void)dropout.forward(x, true);
  EXPECT_NO_THROW((void)dropout.backward(g));
  // …and the next eval forward disarms it again (stale-mask leak).
  (void)dropout.forward(x, false);
  EXPECT_THROW((void)dropout.backward(g), std::invalid_argument);
}

TEST(Dropout, CloneDrawsIdenticalMasks) {
  Rng rng(7);
  Dropout original(0.5f, rng);
  auto clone = original.clone();
  const auto x = Tensor::ones(Shape{8, 8});
  // Same RNG state in the clone → same masks in the same order.
  EXPECT_EQ(original.forward(x, true), clone->forward(x, true));
  EXPECT_EQ(original.forward(x, true), clone->forward(x, true));
}

TEST(Dropout, InvalidProbabilityThrows) {
  Rng rng(8);
  EXPECT_THROW(Dropout(-0.1f, rng), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f, rng), std::invalid_argument);
}

TEST(Dropout, StatelessInterface) {
  Rng rng(9);
  Dropout dropout(0.2f, rng);
  EXPECT_TRUE(dropout.parameters().empty());
  EXPECT_EQ(dropout.output_shape(Shape{2, 3}), Shape({2, 3}));
}

}  // namespace
