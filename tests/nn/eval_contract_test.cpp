// Eval-path contract sweep: for EVERY layer, an evaluation forward
// (train=false) must leave no training state behind —
//   (1) backward() after an eval-only forward fails loudly,
//   (2) an eval forward *invalidates* the cache of an earlier training
//       forward (no silent differentiation against a stale batch),
//   (3) a training forward after an eval pass re-arms backward().
// Before this contract, several layers cached activations unconditionally
// (a memcpy per eval batch) and Dropout silently passed gradients through
// after an eval forward — differentiating the identity while training runs
// the masked scale.
#include <functional>
#include <gtest/gtest.h>

#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/batchnorm.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/dropout.hpp"
#include "gsfl/nn/flatten.hpp"
#include "gsfl/nn/pooling.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::Layer;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

struct LayerCase {
  std::string name;
  std::function<std::unique_ptr<Layer>(Rng&)> make;
  Shape input;
};

std::vector<LayerCase> all_cases() {
  // One entry per Layer implementation — a new layer class must be added
  // here (the suite is the machine-checked census of the eval contract).
  std::vector<LayerCase> cases;
  const auto add = [&](std::string name,
                       std::function<std::unique_ptr<Layer>(Rng&)> make,
                       Shape input) {
    cases.push_back({std::move(name), std::move(make), std::move(input)});
  };
  add("dense",
      [](Rng& rng) { return std::make_unique<gsfl::nn::Dense>(6, 4, rng); },
      Shape{3, 6});
  add("conv2d",
      [](Rng& rng) {
        return std::make_unique<gsfl::nn::Conv2d>(2, 3, 3, 1, 1, rng);
      },
      Shape{2, 2, 6, 5});
  add("batchnorm",
      [](Rng&) { return std::make_unique<gsfl::nn::BatchNorm2d>(2); },
      Shape{2, 2, 3, 3});
  add("dropout",
      [](Rng& rng) { return std::make_unique<gsfl::nn::Dropout>(0.3f, rng); },
      Shape{3, 8});
  add("relu", [](Rng&) { return std::make_unique<gsfl::nn::Relu>(); },
      Shape{3, 10});
  add("leaky_relu",
      [](Rng&) { return std::make_unique<gsfl::nn::LeakyRelu>(0.1f); },
      Shape{2, 2, 3, 3});
  add("tanh", [](Rng&) { return std::make_unique<gsfl::nn::Tanh>(); },
      Shape{3, 7});
  add("sigmoid", [](Rng&) { return std::make_unique<gsfl::nn::Sigmoid>(); },
      Shape{3, 4});
  add("maxpool",
      [](Rng&) { return std::make_unique<gsfl::nn::MaxPool2d>(2); },
      Shape{2, 2, 6, 4});
  add("avgpool",
      [](Rng&) { return std::make_unique<gsfl::nn::AvgPool2d>(2); },
      Shape{2, 3, 4, 6});
  add("flatten", [](Rng&) { return std::make_unique<gsfl::nn::Flatten>(); },
      Shape{2, 2, 3, 4});
  return cases;
}

class EvalContract : public ::testing::TestWithParam<LayerCase> {};

TEST_P(EvalContract, BackwardAfterEvalOnlyForwardThrows) {
  Rng rng(201);
  auto layer = GetParam().make(rng);
  const auto x = Tensor::uniform(GetParam().input, rng, -1, 1);
  const auto y = layer->forward(x, /*train=*/false);
  const auto dy = Tensor::uniform(y.shape(), rng, -1, 1);
  EXPECT_THROW((void)layer->backward(dy), std::invalid_argument);
}

TEST_P(EvalContract, EvalForwardInvalidatesTrainingCache) {
  Rng rng(202);
  auto layer = GetParam().make(rng);
  const auto x = Tensor::uniform(GetParam().input, rng, -1, 1);
  const auto y = layer->forward(x, /*train=*/true);
  (void)layer->forward(x, /*train=*/false);
  const auto dy = Tensor::uniform(y.shape(), rng, -1, 1);
  EXPECT_THROW((void)layer->backward(dy), std::invalid_argument);
}

TEST_P(EvalContract, TrainingForwardAfterEvalRearmsBackward) {
  Rng rng(203);
  auto layer = GetParam().make(rng);
  const auto x = Tensor::uniform(GetParam().input, rng, -1, 1);
  (void)layer->forward(x, /*train=*/false);
  const auto y = layer->forward(x, /*train=*/true);
  const auto dy = Tensor::uniform(y.shape(), rng, -1, 1);
  Tensor dx;
  EXPECT_NO_THROW(dx = layer->backward(dy));
  EXPECT_EQ(dx.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, EvalContract, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<LayerCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
