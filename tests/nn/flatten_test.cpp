#include <gtest/gtest.h>

#include "gsfl/nn/flatten.hpp"

namespace {

using gsfl::nn::Flatten;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(Flatten, CollapsesNonBatchAxes) {
  Flatten flatten;
  const Tensor x(Shape{2, 3, 4, 5});
  const auto y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
}

TEST(Flatten, PreservesValuesRowMajor) {
  Flatten flatten;
  const auto x = Tensor::arange(24).reshape(Shape{2, 2, 2, 3});
  const auto y = flatten.forward(x, true);
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_FLOAT_EQ(y.at(i), static_cast<float>(i));
  }
}

TEST(Flatten, BackwardRestoresShape) {
  Flatten flatten;
  const Tensor x(Shape{2, 3, 2, 2});
  (void)flatten.forward(x, true);
  const auto g = flatten.backward(Tensor::ones(Shape{2, 12}));
  EXPECT_EQ(g.shape(), Shape({2, 3, 2, 2}));
}

TEST(Flatten, Rank2PassThrough) {
  Flatten flatten;
  const Tensor x(Shape{4, 7});
  EXPECT_EQ(flatten.forward(x, true).shape(), Shape({4, 7}));
}

TEST(Flatten, BackwardWithoutForwardThrows) {
  Flatten flatten;
  EXPECT_THROW((void)flatten.backward(Tensor(Shape{1, 4})),
               std::invalid_argument);
}

TEST(Flatten, ZeroCostAndStateless) {
  Flatten flatten;
  EXPECT_EQ(flatten.flops(Shape{8, 3, 16, 16}).forward, 0u);
  EXPECT_TRUE(flatten.parameters().empty());
  EXPECT_EQ(flatten.output_shape(Shape{8, 3, 16, 16}), Shape({8, 768}));
}

}  // namespace
