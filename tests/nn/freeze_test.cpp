// Sequential::freeze — the serving lane's correctness contract:
//   - a frozen f32 forward is bitwise identical to the unfrozen,
//     fusion-disabled eval forward, for every thread count and pack
//     strategy (the BN fold, dropout elision, relu fusion across skipped
//     layers, and persistent packed panels change *nothing* numerically);
//   - freeze(kInt8) matches the same model with the dense layers manually
//     switched to the quantized forward;
//   - freezing mutates no parameter or buffer (state dicts survive);
//   - training entry points are rejected while frozen, and copy semantics
//     carry the frozen plan.
#include <gtest/gtest.h>

#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/sequential.hpp"
#include "support/property.hpp"

namespace {

namespace prop = gsfl::test::prop;
using gsfl::common::Rng;
using gsfl::nn::Sequential;
using gsfl::tensor::GemmPrecision;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

/// The serving preset at test scale (three conv blocks with batch norm,
/// dropout in the head), with the batch-norm running statistics moved off
/// their init values by a few training forwards.
Sequential build_trained(Rng& rng) {
  const auto config = gsfl::nn::serving_cnn_config(/*image_size=*/16,
                                                   /*classes=*/7);
  Sequential model = gsfl::nn::make_gtsrb_cnn(config, rng);
  for (int step = 0; step < 3; ++step) {
    const auto batch = Tensor::uniform(Shape{4, 3, 16, 16}, rng, -1, 1);
    (void)model.forward(batch, /*train=*/true);
  }
  return model;
}

TEST(Freeze, MatchesUnfusedEvalBitwiseAcrossThreadsAndStrategies) {
  Rng rng(301);
  const Sequential trained = build_trained(rng);
  const auto x = Tensor::uniform(Shape{5, 3, 16, 16}, rng, -1, 1);

  Sequential frozen = trained;
  frozen.freeze();
  Sequential frozen_unfused = trained;
  frozen_unfused.freeze();
  frozen_unfused.set_fusion(false);
  Sequential baseline = trained;
  baseline.set_fusion(false);

  prop::for_each_thread_count([&](std::size_t threads) {
    prop::for_each_pack_strategy([&](gsfl::tensor::PackStrategy strategy) {
      const auto want = baseline.forward(x, /*train=*/false);
      ASSERT_TRUE(prop::bitwise_equal(frozen.forward(x, false), want))
          << "threads=" << threads
          << " strategy=" << prop::pack_strategy_name(strategy);
      // The epilogue relu clamp (fused across the skipped BN) and the Relu
      // layer applied to the stored epilogue output must agree bitwise too.
      ASSERT_TRUE(
          prop::bitwise_equal(frozen_unfused.forward(x, false), want))
          << "unfused frozen, threads=" << threads;
    });
  });
}

TEST(Freeze, Int8MatchesManuallyQuantizedDenseLayers) {
  Rng rng(302);
  const Sequential trained = build_trained(rng);
  const auto x = Tensor::uniform(Shape{4, 3, 16, 16}, rng, -1, 1);

  Sequential frozen = trained;
  frozen.freeze(GemmPrecision::kInt8);
  Sequential manual = trained;
  for (std::size_t i = 0; i < manual.size(); ++i) {
    if (auto* dense = dynamic_cast<gsfl::nn::Dense*>(&manual.layer(i))) {
      dense->set_forward_precision(GemmPrecision::kInt8);
    }
  }

  prop::for_each_thread_count([&](std::size_t threads) {
    ASSERT_TRUE(prop::bitwise_equal(frozen.forward(x, false),
                                    manual.forward(x, false)))
        << "threads=" << threads;
  });
}

TEST(Freeze, FoldsBatchNormAndPlansSkips) {
  Rng rng(303);
  Sequential model = build_trained(rng);
  EXPECT_FALSE(model.frozen());
  model.freeze();
  EXPECT_TRUE(model.frozen());
  // Every conv gained a folded epilogue; the stack itself is untouched
  // (indices, summaries, and state dicts must not shift).
  std::size_t folded = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (auto* conv = dynamic_cast<gsfl::nn::Conv2d*>(&model.layer(i))) {
      EXPECT_TRUE(conv->batchnorm_folded()) << "layer " << i;
      ++folded;
    }
  }
  EXPECT_EQ(folded, 3u);
}

TEST(Freeze, LeavesStateDictUntouched) {
  Rng rng(304);
  Sequential model = build_trained(rng);
  const auto before = model.state();
  model.freeze();
  const auto after = model.state();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(prop::bitwise_equal(after[i], before[i])) << "entry " << i;
  }
}

TEST(Freeze, RejectsTrainingEntryPoints) {
  Rng rng(305);
  Sequential model = build_trained(rng);
  const auto state = model.state();
  model.freeze();
  const auto x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, -1, 1);

  EXPECT_THROW((void)model.forward(x, /*train=*/true), std::invalid_argument);
  EXPECT_THROW((void)model.backward(Tensor(Shape{2, 7})),
               std::invalid_argument);
  EXPECT_THROW(model.load_state(state), std::invalid_argument);
  EXPECT_THROW((void)model.split(1), std::invalid_argument);
  EXPECT_THROW(model.freeze(), std::invalid_argument);

  Sequential trainable = build_trained(rng);
  EXPECT_THROW((void)Sequential::concatenate(model, trainable),
               std::invalid_argument);
  EXPECT_THROW((void)Sequential::concatenate(trainable, model),
               std::invalid_argument);
}

TEST(Freeze, CopyBeforeFreezeStaysTrainable) {
  Rng rng(306);
  Sequential model = build_trained(rng);
  Sequential copy = model;
  model.freeze();

  const auto x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, -1, 1);
  const auto y = copy.forward(x, /*train=*/true);
  EXPECT_NO_THROW((void)copy.backward(Tensor::uniform(y.shape(), rng, -1, 1)));
  EXPECT_FALSE(copy.frozen());
}

TEST(Freeze, CopyCarriesTheFrozenPlan) {
  Rng rng(307);
  Sequential model = build_trained(rng);
  model.freeze();
  Sequential copy = model;
  EXPECT_TRUE(copy.frozen());

  const auto x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, -1, 1);
  EXPECT_TRUE(prop::bitwise_equal(copy.forward(x, false),
                                  model.forward(x, false)));
  EXPECT_THROW((void)copy.forward(x, /*train=*/true), std::invalid_argument);
}

}  // namespace
