// Layer-contract property sweep: every Layer implementation must satisfy
// the same invariants regardless of configuration —
//   (1) forward(x).shape() == output_shape(x.shape())
//   (2) backward(dy).shape() == x.shape()
//   (3) parameters() and gradients() are index-aligned in shape
//   (4) clone() is behaviourally identical and fully independent
//   (5) flops() is positive for compute layers and batch-additive
// Run for every layer type across a grid of input geometries.
#include <functional>
#include <gtest/gtest.h>

#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/batchnorm.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/dropout.hpp"
#include "gsfl/nn/flatten.hpp"
#include "gsfl/nn/pooling.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::Layer;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

struct LayerCase {
  std::string name;
  std::function<std::unique_ptr<Layer>(Rng&)> make;
  Shape input;
};

std::vector<LayerCase> all_cases() {
  std::vector<LayerCase> cases;
  const auto add = [&](std::string name,
                       std::function<std::unique_ptr<Layer>(Rng&)> make,
                       Shape input) {
    cases.push_back({std::move(name), std::move(make), std::move(input)});
  };

  for (const std::size_t batch : {1ul, 3ul}) {
    add("dense_b" + std::to_string(batch),
        [](Rng& rng) { return std::make_unique<gsfl::nn::Dense>(6, 4, rng); },
        Shape{batch, 6});
    add("conv_s1p1_b" + std::to_string(batch),
        [](Rng& rng) {
          return std::make_unique<gsfl::nn::Conv2d>(2, 3, 3, 1, 1, rng);
        },
        Shape{batch, 2, 6, 5});
    add("conv_s2p0_b" + std::to_string(batch),
        [](Rng& rng) {
          return std::make_unique<gsfl::nn::Conv2d>(1, 2, 3, 2, 0, rng);
        },
        Shape{batch, 1, 7, 9});
    add("conv_k1_b" + std::to_string(batch),
        [](Rng& rng) {
          return std::make_unique<gsfl::nn::Conv2d>(3, 5, 1, 1, 0, rng);
        },
        Shape{batch, 3, 4, 4});
    add("maxpool_b" + std::to_string(batch),
        [](Rng&) { return std::make_unique<gsfl::nn::MaxPool2d>(2); },
        Shape{batch, 2, 6, 4});
    add("maxpool_overlap_b" + std::to_string(batch),
        [](Rng&) { return std::make_unique<gsfl::nn::MaxPool2d>(3, 1); },
        Shape{batch, 1, 5, 5});
    add("avgpool_b" + std::to_string(batch),
        [](Rng&) { return std::make_unique<gsfl::nn::AvgPool2d>(2); },
        Shape{batch, 3, 4, 6});
    add("relu_b" + std::to_string(batch),
        [](Rng&) { return std::make_unique<gsfl::nn::Relu>(); },
        Shape{batch, 10});
    add("leaky_b" + std::to_string(batch),
        [](Rng&) { return std::make_unique<gsfl::nn::LeakyRelu>(0.1f); },
        Shape{batch, 2, 3, 3});
    add("tanh_b" + std::to_string(batch),
        [](Rng&) { return std::make_unique<gsfl::nn::Tanh>(); },
        Shape{batch, 7});
    add("sigmoid_b" + std::to_string(batch),
        [](Rng&) { return std::make_unique<gsfl::nn::Sigmoid>(); },
        Shape{batch, 4});
    add("flatten_b" + std::to_string(batch),
        [](Rng&) { return std::make_unique<gsfl::nn::Flatten>(); },
        Shape{batch, 2, 3, 4});
    add("batchnorm_b" + std::to_string(batch + 1),  // bn needs batch ≥ 2
        [](Rng&) { return std::make_unique<gsfl::nn::BatchNorm2d>(2); },
        Shape{batch + 1, 2, 3, 3});
    add("dropout_b" + std::to_string(batch),
        [](Rng& rng) {
          return std::make_unique<gsfl::nn::Dropout>(0.3f, rng);
        },
        Shape{batch, 8});
  }
  return cases;
}

class LayerContract : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerContract, ForwardShapeMatchesDeclaredOutputShape) {
  Rng rng(101);
  auto layer = GetParam().make(rng);
  const auto x = Tensor::uniform(GetParam().input, rng, -1, 1);
  const auto y = layer->forward(x, true);
  EXPECT_EQ(y.shape(), layer->output_shape(x.shape()));
}

TEST_P(LayerContract, BackwardShapeMatchesInput) {
  Rng rng(102);
  auto layer = GetParam().make(rng);
  const auto x = Tensor::uniform(GetParam().input, rng, -1, 1);
  const auto y = layer->forward(x, true);
  const auto dy = Tensor::uniform(y.shape(), rng, -1, 1);
  const auto dx = layer->backward(dy);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST_P(LayerContract, ParameterGradientAlignment) {
  Rng rng(103);
  auto layer = GetParam().make(rng);
  const auto params = layer->parameters();
  const auto grads = layer->gradients();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->shape(), grads[i]->shape()) << "slot " << i;
  }
}

TEST_P(LayerContract, CloneIsIdenticalAndIndependent) {
  Rng rng(104);
  auto layer = GetParam().make(rng);
  auto clone = layer->clone();
  const auto x = Tensor::uniform(GetParam().input, rng, -1, 1);
  EXPECT_EQ(layer->forward(x, true), clone->forward(x, true));

  // Perturbing the clone's parameters must not leak into the original.
  if (!clone->parameters().empty()) {
    clone->parameters().front()->fill(123.0f);
    const auto y1 = layer->forward(x, true);
    const auto y2 = clone->forward(x, true);
    EXPECT_NE(y1, y2);
  }
}

TEST_P(LayerContract, FlopsBatchAdditive) {
  Rng rng(105);
  auto layer = GetParam().make(rng);
  const Shape one = GetParam().input.with_dim0(1);
  const Shape four = GetParam().input.with_dim0(4);
  const auto f1 = layer->flops(one);
  const auto f4 = layer->flops(four);
  EXPECT_EQ(f4.forward, 4 * f1.forward) << "forward flops not batch-linear";
  EXPECT_EQ(f4.backward, 4 * f1.backward)
      << "backward flops not batch-linear";
}

TEST_P(LayerContract, ZeroGradClearsEverything) {
  Rng rng(106);
  auto layer = GetParam().make(rng);
  const auto x = Tensor::uniform(GetParam().input, rng, -1, 1);
  const auto y = layer->forward(x, true);
  (void)layer->backward(Tensor::uniform(y.shape(), rng, -1, 1));
  layer->zero_grad();
  for (const auto* g : layer->gradients()) {
    for (const float v : g->data()) {
      ASSERT_FLOAT_EQ(v, 0.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, LayerContract, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<LayerCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
