#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/common/rng.hpp"
#include "gsfl/nn/loss.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::accuracy;
using gsfl::nn::softmax;
using gsfl::nn::softmax_cross_entropy;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(Softmax, RowsSumToOne) {
  Rng rng(1);
  const auto logits = Tensor::uniform(Shape{5, 7}, rng, -4, 4);
  const auto probs = softmax(logits);
  for (std::size_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      const float p = probs.at2(i, j);
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, UniformLogitsGiveUniformProbs) {
  const auto probs = softmax(Tensor::full(Shape{1, 4}, 3.0f));
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(probs.at2(0, j), 0.25f, 1e-6);
  }
}

TEST(Softmax, InvariantToLogitShift) {
  const Tensor a(Shape{1, 3}, {1.0f, 2.0f, 3.0f});
  const Tensor b(Shape{1, 3}, {101.0f, 102.0f, 103.0f});
  EXPECT_LT(Tensor::max_abs_diff(softmax(a), softmax(b)), 1e-6);
}

TEST(Softmax, NumericallyStableAtExtremes) {
  const Tensor logits(Shape{1, 3}, {1000.0f, -1000.0f, 0.0f});
  const auto probs = softmax(logits);
  EXPECT_NEAR(probs.at2(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(probs.at2(0, 1), 0.0f, 1e-6);
  for (const float p : probs.data()) EXPECT_FALSE(std::isnan(p));
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  const auto logits = Tensor::zeros(Shape{2, 10});
  const std::int32_t labels[] = {3, 7};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(10.0), 1e-5);
}

TEST(CrossEntropy, ConfidentCorrectPredictionNearZeroLoss) {
  Tensor logits(Shape{1, 3});
  logits.at2(0, 1) = 50.0f;
  const std::int32_t labels[] = {1};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, 0.0, 1e-5);
}

TEST(CrossEntropy, GradientIsProbsMinusOneHotOverBatch) {
  Rng rng(2);
  const auto logits = Tensor::uniform(Shape{4, 5}, rng, -2, 2);
  const std::int32_t labels[] = {0, 2, 4, 2};
  const auto result = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      const float expected =
          (result.probabilities.at2(i, j) -
           (static_cast<std::size_t>(labels[i]) == j ? 1.0f : 0.0f)) /
          4.0f;
      EXPECT_NEAR(result.grad_logits.at2(i, j), expected, 1e-6);
    }
  }
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Rng rng(3);
  const auto logits = Tensor::uniform(Shape{3, 6}, rng, -3, 3);
  const std::int32_t labels[] = {5, 0, 3};
  const auto result = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 6; ++j) {
      row_sum += result.grad_logits.at2(i, j);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, NumericGradientCheck) {
  Rng rng(4);
  auto logits = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  const std::int32_t labels[] = {1, 3};
  const auto analytic = softmax_cross_entropy(logits, labels);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits.at(i);
    logits.at(i) = saved + eps;
    const double plus = softmax_cross_entropy(logits, labels).loss;
    logits.at(i) = saved - eps;
    const double minus = softmax_cross_entropy(logits, labels).loss;
    logits.at(i) = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(analytic.grad_logits.at(i), numeric, 1e-3);
  }
}

TEST(CrossEntropy, ValidatesArguments) {
  const Tensor logits(Shape{2, 3});
  const std::int32_t too_few[] = {0};
  EXPECT_THROW(softmax_cross_entropy(logits, too_few),
               std::invalid_argument);
  const std::int32_t out_of_range[] = {0, 3};
  EXPECT_THROW(softmax_cross_entropy(logits, out_of_range),
               std::invalid_argument);
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits(Shape{3, 3});
  logits.at2(0, 0) = 1.0f;  // predicts 0
  logits.at2(1, 2) = 1.0f;  // predicts 2
  logits.at2(2, 1) = 1.0f;  // predicts 1
  const std::int32_t labels[] = {0, 2, 0};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Accuracy, PerfectAndZero) {
  Tensor logits(Shape{2, 2});
  logits.at2(0, 0) = 5.0f;
  logits.at2(1, 1) = 5.0f;
  const std::int32_t right[] = {0, 1};
  const std::int32_t wrong[] = {1, 0};
  EXPECT_DOUBLE_EQ(accuracy(logits, right), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, wrong), 0.0);
}

}  // namespace
