#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/nn/model_zoo.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::CnnConfig;
using gsfl::nn::cut_layer_count;
using gsfl::nn::default_cut_layer;
using gsfl::nn::make_gtsrb_cnn;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(ModelZoo, DefaultCnnTopology) {
  Rng rng(1);
  CnnConfig config;  // 32x32x3 → 43 classes
  auto model = make_gtsrb_cnn(config, rng);
  EXPECT_EQ(model.size(), 10u);
  EXPECT_EQ(model.output_shape(Shape{2, 3, 32, 32}), Shape({2, 43}));
}

TEST(ModelZoo, BatchNormVariantAddsLayers) {
  Rng rng(2);
  CnnConfig config;
  config.batch_norm = true;
  config.dropout = 0.3f;
  auto model = make_gtsrb_cnn(config, rng);
  EXPECT_EQ(model.size(), 13u);
  EXPECT_EQ(model.output_shape(Shape{1, 3, 32, 32}), Shape({1, 43}));
}

TEST(ModelZoo, ScaledGeometryWorks) {
  Rng rng(3);
  CnnConfig config;
  config.image_size = 16;
  config.classes = 12;
  auto model = make_gtsrb_cnn(config, rng);
  EXPECT_EQ(model.output_shape(Shape{4, 3, 16, 16}), Shape({4, 12}));
}

TEST(ModelZoo, DefaultCutLayerSplitsAfterFirstBlock) {
  CnnConfig plain;
  EXPECT_EQ(default_cut_layer(plain), 3u);
  CnnConfig bn;
  bn.batch_norm = true;
  EXPECT_EQ(default_cut_layer(bn), 4u);

  // The cut must fall strictly inside the model.
  Rng rng(4);
  auto model = make_gtsrb_cnn(plain, rng);
  EXPECT_LT(default_cut_layer(plain), model.size());
  EXPECT_GT(default_cut_layer(plain), 0u);
}

TEST(ModelZoo, CutLayerCountMatchesDepth) {
  Rng rng(5);
  CnnConfig plain;
  EXPECT_EQ(cut_layer_count(plain), make_gtsrb_cnn(plain, rng).size());
  CnnConfig fancy;
  fancy.batch_norm = true;
  fancy.dropout = 0.5f;
  EXPECT_EQ(cut_layer_count(fancy), make_gtsrb_cnn(fancy, rng).size());
}

TEST(ModelZoo, ForwardProducesFiniteLogits) {
  Rng rng(6);
  CnnConfig config;
  config.image_size = 16;
  config.classes = 8;
  auto model = make_gtsrb_cnn(config, rng);
  const auto x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, 0, 1);
  const auto logits = model.forward(x, true);
  for (const float v : logits.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ModelZoo, SameSeedSameModel) {
  CnnConfig config;
  config.image_size = 16;
  config.classes = 5;
  Rng rng_a(77);
  Rng rng_b(77);
  auto a = make_gtsrb_cnn(config, rng_a);
  auto b = make_gtsrb_cnn(config, rng_b);
  const auto sa = a.state();
  const auto sb = b.state();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
}

TEST(ModelZoo, ConfigValidation) {
  Rng rng(7);
  CnnConfig bad_size;
  bad_size.image_size = 10;  // not divisible by 4
  EXPECT_THROW(make_gtsrb_cnn(bad_size, rng), std::invalid_argument);
  CnnConfig one_class;
  one_class.classes = 1;
  EXPECT_THROW(make_gtsrb_cnn(one_class, rng), std::invalid_argument);
}

}  // namespace
