#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/loss.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/optimizer.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::Adam;
using gsfl::nn::MomentumSgd;
using gsfl::nn::Sgd;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

struct Slot {
  Tensor param{Shape{2}, {1.0f, 2.0f}};
  Tensor grad{Shape{2}, {0.5f, -1.0f}};
};

TEST(Sgd, BasicStep) {
  Slot s;
  Sgd opt(0.1);
  opt.attach({&s.param}, {&s.grad});
  opt.step();
  EXPECT_FLOAT_EQ(s.param.at(0), 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(s.param.at(1), 2.0f + 0.1f * 1.0f);
}

TEST(Sgd, WeightDecayShrinksParams) {
  Slot s;
  s.grad.fill(0.0f);
  Sgd opt(0.1, /*weight_decay=*/0.5);
  opt.attach({&s.param}, {&s.grad});
  opt.step();
  // w ← w − lr·λ·w = w(1 − 0.05)
  EXPECT_FLOAT_EQ(s.param.at(0), 1.0f * 0.95f);
  EXPECT_FLOAT_EQ(s.param.at(1), 2.0f * 0.95f);
}

TEST(Sgd, LearningRateMutable) {
  Slot s;
  Sgd opt(0.1);
  opt.attach({&s.param}, {&s.grad});
  opt.set_learning_rate(0.2);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.2);
  opt.step();
  EXPECT_FLOAT_EQ(s.param.at(0), 1.0f - 0.2f * 0.5f);
}

TEST(MomentumSgd, FirstStepEqualsSgd) {
  Slot a;
  Slot b;
  Sgd plain(0.1);
  MomentumSgd mom(0.1, 0.9);
  plain.attach({&a.param}, {&a.grad});
  mom.attach({&b.param}, {&b.grad});
  plain.step();
  mom.step();
  EXPECT_FLOAT_EQ(a.param.at(0), b.param.at(0));
}

TEST(MomentumSgd, VelocityAccumulates) {
  Slot s;
  MomentumSgd opt(0.1, 0.5);
  opt.attach({&s.param}, {&s.grad});
  opt.step();  // v = g,          w -= lr·g
  opt.step();  // v = 0.5g + g,   w -= lr·1.5g
  // Total: w -= lr·(1 + 1.5)·g
  EXPECT_NEAR(s.param.at(0), 1.0f - 0.1f * 2.5f * 0.5f, 1e-6);
}

TEST(Adam, StepsTowardGradientDescentDirection) {
  Slot s;
  Adam opt(0.01);
  opt.attach({&s.param}, {&s.grad});
  const float before0 = s.param.at(0);
  const float before1 = s.param.at(1);
  opt.step();
  EXPECT_LT(s.param.at(0), before0);  // positive grad → decrease
  EXPECT_GT(s.param.at(1), before1);  // negative grad → increase
}

TEST(Adam, FirstStepSizeApproximatelyLr) {
  // With bias correction, |Δw| ≈ lr for the first step regardless of
  // gradient magnitude.
  Slot s;
  s.grad = Tensor(Shape{2}, {100.0f, -0.001f});
  Adam opt(0.01);
  opt.attach({&s.param}, {&s.grad});
  opt.step();
  EXPECT_NEAR(std::abs(s.param.at(0) - 1.0f), 0.01f, 1e-4);
  EXPECT_NEAR(std::abs(s.param.at(1) - 2.0f), 0.01f, 2e-3);
}

TEST(Optimizer, AttachValidation) {
  Slot s;
  Sgd opt(0.1);
  Tensor wrong_shape(Shape{3});
  EXPECT_THROW(opt.attach({&s.param}, {&wrong_shape}),
               std::invalid_argument);
  EXPECT_THROW(opt.attach({&s.param}, {}), std::invalid_argument);
  EXPECT_THROW(opt.step(), std::invalid_argument);  // not attached
}

TEST(Optimizer, ConstructorValidation) {
  EXPECT_THROW(Sgd(0.0), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1, -1.0), std::invalid_argument);
  EXPECT_THROW(MomentumSgd(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 0.9, 0.999, 0.0), std::invalid_argument);
}

TEST(Optimizer, TrainsSmallModelToLowLoss) {
  // End-to-end: a 2-layer MLP learns XOR-ish synthetic labels.
  Rng rng(1);
  auto model = gsfl::nn::make_mlp(2, {16}, 2, rng);
  Adam opt(0.02);
  opt.attach(model.parameters(), model.gradients());

  // Four points, labels = XOR of sign bits.
  const Tensor x(Shape{4, 2}, {-1, -1, -1, 1, 1, -1, 1, 1});
  const std::int32_t labels[] = {0, 1, 1, 0};

  double last_loss = 0.0;
  for (int iter = 0; iter < 300; ++iter) {
    model.zero_grad();
    const auto logits = model.forward(x, true);
    const auto loss = gsfl::nn::softmax_cross_entropy(logits, labels);
    (void)model.backward(loss.grad_logits);
    opt.step();
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, 0.05);
}

TEST(Optimizer, SgdDecreasesLossMonotonicallyOnQuadratic) {
  // Minimize ||w||² directly: grad = 2w.
  Tensor w(Shape{3}, {3.0f, -4.0f, 5.0f});
  Tensor g(Shape{3});
  Sgd opt(0.1);
  opt.attach({&w}, {&g});
  double prev = w.squared_norm();
  for (int i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 3; ++j) g.at(j) = 2.0f * w.at(j);
    opt.step();
    const double now = w.squared_norm();
    EXPECT_LT(now, prev);
    prev = now;
  }
  EXPECT_LT(prev, 0.1);
}

}  // namespace
