#include <gtest/gtest.h>

#include "gsfl/nn/pooling.hpp"
#include "support/gradcheck.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::AvgPool2d;
using gsfl::nn::MaxPool2d;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(MaxPool, SelectsWindowMaxima) {
  MaxPool2d pool(2);
  const Tensor x(Shape{1, 1, 4, 4},
                 {1,  2,  3,  4,
                  5,  6,  7,  8,
                  9, 10, 11, 12,
                 13, 14, 15, 16});
  const auto y = pool.forward(x, true);
  ASSERT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 8.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 0), 14.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 16.0f);
}

TEST(MaxPool, HandlesNegativeValues) {
  MaxPool2d pool(2);
  const Tensor x(Shape{1, 1, 2, 2}, {-5.0f, -3.0f, -8.0f, -4.0f});
  const auto y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), -3.0f);
}

TEST(MaxPool, BackwardRoutesToArgmaxOnly) {
  MaxPool2d pool(2);
  const Tensor x(Shape{1, 1, 2, 2}, {1.0f, 9.0f, 3.0f, 2.0f});
  (void)pool.forward(x, true);
  const auto g = pool.backward(Tensor(Shape{1, 1, 1, 1}, {5.0f}));
  EXPECT_FLOAT_EQ(g.at(0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(1), 5.0f);
  EXPECT_FLOAT_EQ(g.at(2), 0.0f);
  EXPECT_FLOAT_EQ(g.at(3), 0.0f);
}

TEST(MaxPool, OverlappingStrideGeometry) {
  MaxPool2d pool(3, 1);
  const auto x = Tensor::arange(25).reshape(Shape{1, 1, 5, 5});
  const auto y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 3, 3}));
  // Window at (0,0) covers rows 0..2, cols 0..2 → max = 12.
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 12.0f);
  // Window at (2,2) covers rows 2..4, cols 2..4 → max = 24.
  EXPECT_FLOAT_EQ(y.at4(0, 0, 2, 2), 24.0f);
}

TEST(MaxPool, GradientCheckOnDistinctValues) {
  Rng rng(1);
  MaxPool2d pool(2);
  // arange guarantees unique values → no argmax ties under perturbation.
  auto input = Tensor::arange(32).reshape(Shape{1, 2, 4, 4});
  gsfl::test::check_input_gradient(pool, input, rng);
}

TEST(AvgPool, AveragesWindows) {
  AvgPool2d pool(2);
  const Tensor x(Shape{1, 1, 2, 4}, {1, 3, 5, 7, 9, 11, 13, 15});
  const auto y = pool.forward(x, true);
  ASSERT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 6.0f);
  EXPECT_FLOAT_EQ(y.at(1), 10.0f);
}

TEST(AvgPool, BackwardSpreadsUniformly) {
  AvgPool2d pool(2);
  const auto x = Tensor::ones(Shape{1, 1, 2, 2});
  (void)pool.forward(x, true);
  const auto g = pool.backward(Tensor(Shape{1, 1, 1, 1}, {8.0f}));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g.at(i), 2.0f);
}

TEST(AvgPool, GradientCheck) {
  Rng rng(2);
  AvgPool2d pool(2);
  auto input = Tensor::uniform(Shape{2, 2, 4, 4}, rng, -1, 1);
  gsfl::test::check_input_gradient(pool, input, rng);
}

TEST(Pooling, BatchAndChannelIndependence) {
  Rng rng(3);
  MaxPool2d pool(2);
  const auto x = Tensor::uniform(Shape{3, 4, 6, 6}, rng, -1, 1);
  const auto y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({3, 4, 3, 3}));
  // Pooling image 1 alone matches the batched result.
  const auto single = x.slice0(1, 2);
  MaxPool2d pool2(2);
  const auto y_single = pool2.forward(single, true);
  for (std::size_t i = 0; i < y_single.numel(); ++i) {
    EXPECT_FLOAT_EQ(y_single.at(i), y.at(y.numel() / 3 + i));
  }
}

TEST(Pooling, TooSmallInputThrows) {
  MaxPool2d pool(4);
  EXPECT_THROW((void)pool.forward(Tensor(Shape{1, 1, 3, 3}), true),
               std::invalid_argument);
}

TEST(Pooling, BackwardWithoutForwardThrows) {
  MaxPool2d max_pool(2);
  AvgPool2d avg_pool(2);
  EXPECT_THROW((void)max_pool.backward(Tensor(Shape{1, 1, 2, 2})),
               std::invalid_argument);
  EXPECT_THROW((void)avg_pool.backward(Tensor(Shape{1, 1, 2, 2})),
               std::invalid_argument);
}

TEST(Pooling, NamesAndClones) {
  MaxPool2d max_pool(2);
  AvgPool2d avg_pool(3, 2);
  EXPECT_EQ(max_pool.name(), "maxpool2d(k2,s2)");
  EXPECT_EQ(avg_pool.name(), "avgpool2d(k3,s2)");
  EXPECT_NE(max_pool.clone(), nullptr);
  EXPECT_NE(avg_pool.clone(), nullptr);
  EXPECT_TRUE(max_pool.parameters().empty());
}

}  // namespace
