#include <gtest/gtest.h>

#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/sequential.hpp"
#include "support/property.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::Dense;
using gsfl::nn::make_mlp;
using gsfl::nn::Relu;
using gsfl::nn::Sequential;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

Sequential two_layer(Rng& rng) {
  Sequential model;
  model.emplace<Dense>(4, 8, rng);
  model.emplace<Relu>();
  model.emplace<Dense>(8, 3, rng);
  return model;
}

TEST(Sequential, ForwardComposesLayers) {
  Rng rng(1);
  auto model = two_layer(rng);
  const auto x = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  const auto y = model.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 3}));

  // Manually compose the same layers.
  auto manual = model.layer(2).forward(
      model.layer(1).forward(model.layer(0).forward(x, true), true), true);
  EXPECT_EQ(y, manual);
}

TEST(Sequential, BackwardChainsInReverse) {
  Rng rng(2);
  auto model = two_layer(rng);
  const auto x = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  (void)model.forward(x, true);
  const auto g = model.backward(Tensor::ones(Shape{2, 3}));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Sequential, ParameterAndGradientOrderingAligned) {
  Rng rng(3);
  auto model = two_layer(rng);
  const auto params = model.parameters();
  const auto grads = model.gradients();
  ASSERT_EQ(params.size(), grads.size());
  ASSERT_EQ(params.size(), 4u);  // two Dense layers, W+b each
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->shape(), grads[i]->shape());
  }
}

TEST(Sequential, StateRoundTrip) {
  Rng rng(4);
  auto a = two_layer(rng);
  auto b = two_layer(rng);  // different weights (same architecture)
  const auto x = Tensor::uniform(Shape{1, 4}, rng, -1, 1);
  EXPECT_NE(a.forward(x, false), b.forward(x, false));

  b.load_state(a.state());
  EXPECT_EQ(a.forward(x, false), b.forward(x, false));
}

TEST(Sequential, LoadStateValidatesShapeAndCount) {
  Rng rng(5);
  auto model = two_layer(rng);
  auto state = model.state();
  state.pop_back();
  EXPECT_THROW(model.load_state(state), std::invalid_argument);

  auto bad_shape = model.state();
  bad_shape[0] = Tensor(Shape{1});
  EXPECT_THROW(model.load_state(bad_shape), std::invalid_argument);
}

TEST(Sequential, CopyIsDeep) {
  Rng rng(6);
  auto original = two_layer(rng);
  Sequential copy = original;
  const auto x = Tensor::uniform(Shape{1, 4}, rng, -1, 1);
  const auto before = original.forward(x, false);
  copy.parameters()[0]->fill(0.0f);
  EXPECT_EQ(original.forward(x, false), before);
  EXPECT_NE(copy.forward(x, false), before);
}

TEST(Sequential, MoveKeepsBehaviour) {
  Rng rng(7);
  auto original = two_layer(rng);
  const auto x = Tensor::uniform(Shape{1, 4}, rng, -1, 1);
  const auto expected = original.forward(x, false);
  Sequential moved = std::move(original);
  EXPECT_EQ(moved.forward(x, false), expected);
}

TEST(Sequential, SplitPartitionsLayers) {
  Rng rng(8);
  auto model = two_layer(rng);
  const auto [head, tail] = model.split(1);
  EXPECT_EQ(head.size(), 1u);
  EXPECT_EQ(tail.size(), 2u);

  const auto x = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  auto head_copy = head;
  auto tail_copy = tail;
  const auto composed =
      tail_copy.forward(head_copy.forward(x, false), false);
  EXPECT_EQ(composed, model.forward(x, false));
}

TEST(Sequential, SplitAtExtremes) {
  Rng rng(9);
  auto model = two_layer(rng);
  const auto [empty_head, full_tail] = model.split(0);
  EXPECT_TRUE(empty_head.empty());
  EXPECT_EQ(full_tail.size(), 3u);
  const auto [full_head, empty_tail] = model.split(3);
  EXPECT_EQ(full_head.size(), 3u);
  EXPECT_TRUE(empty_tail.empty());
  EXPECT_THROW(model.split(4), std::invalid_argument);
}

TEST(Sequential, ConcatenateInvertsSplit) {
  Rng rng(10);
  auto model = two_layer(rng);
  const auto [head, tail] = model.split(2);
  auto rejoined = Sequential::concatenate(head, tail);
  const auto x = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  EXPECT_EQ(rejoined.forward(x, false), model.forward(x, false));
  EXPECT_EQ(rejoined.parameter_count(), model.parameter_count());
}

TEST(Sequential, OutputShapeWalksLayers) {
  Rng rng(11);
  auto model = two_layer(rng);
  EXPECT_EQ(model.output_shape(Shape{5, 4}), Shape({5, 3}));
  const auto shapes = model.layer_output_shapes(Shape{5, 4});
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0], Shape({5, 8}));
  EXPECT_EQ(shapes[1], Shape({5, 8}));
  EXPECT_EQ(shapes[2], Shape({5, 3}));
}

TEST(Sequential, FlopsAreSumOfLayerFlops) {
  Rng rng(12);
  auto model = two_layer(rng);
  const auto total = model.flops(Shape{2, 4});
  std::uint64_t manual_fwd = 0;
  Shape s{2, 4};
  for (std::size_t i = 0; i < model.size(); ++i) {
    manual_fwd += model.layer(i).flops(s).forward;
    s = model.layer(i).output_shape(s);
  }
  EXPECT_EQ(total.forward, manual_fwd);
}

TEST(Sequential, StateBytesCountsFloats) {
  Rng rng(13);
  auto model = two_layer(rng);
  EXPECT_EQ(model.state_bytes(), model.parameter_count() * sizeof(float));
}

TEST(Sequential, SummaryMentionsLayersAndParams) {
  Rng rng(14);
  auto model = two_layer(rng);
  const auto text = model.summary(Shape{1, 4});
  EXPECT_NE(text.find("dense(4->8)"), std::string::npos);
  EXPECT_NE(text.find("relu"), std::string::npos);
  EXPECT_NE(text.find("parameters:"), std::string::npos);
}

TEST(Sequential, ZeroGradClearsAllLayers) {
  Rng rng(15);
  auto model = two_layer(rng);
  const auto x = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  (void)model.forward(x, true);
  (void)model.backward(Tensor::ones(Shape{2, 3}));
  model.zero_grad();
  for (const auto* g : model.gradients()) {
    for (const float v : g->data()) EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(Sequential, AddNullLayerThrows) {
  Sequential model;
  EXPECT_THROW(model.add(nullptr), std::invalid_argument);
}

// ---- relu-fusion peephole ---------------------------------------------------

TEST(SequentialFusion, PeepholeForwardMatchesUnfusedBitwise) {
  Rng rng(21);
  auto fused = two_layer(rng);
  auto unfused = fused;
  unfused.set_fusion(false);
  ASSERT_TRUE(fused.fusion_enabled());
  ASSERT_FALSE(unfused.fusion_enabled());

  const auto x = Tensor::uniform(Shape{3, 4}, rng, -1, 1);
  EXPECT_TRUE(gsfl::test::prop::bitwise_equal(fused.forward(x, true),
                                              unfused.forward(x, true)));
  // Eval path too (train=false).
  EXPECT_TRUE(gsfl::test::prop::bitwise_equal(fused.forward(x, false),
                                              unfused.forward(x, false)));
}

TEST(SequentialFusion, PeepholeBackwardMatchesUnfusedBitwise) {
  Rng rng(22);
  auto fused = two_layer(rng);
  auto unfused = fused;
  unfused.set_fusion(false);

  const auto x = Tensor::uniform(Shape{3, 4}, rng, -1, 1);
  Rng grng(23);
  const auto dy = Tensor::uniform(Shape{3, 3}, grng, -1, 1);

  fused.zero_grad();
  (void)fused.forward(x, true);
  const auto dx_fused = fused.backward(dy);
  unfused.zero_grad();
  (void)unfused.forward(x, true);
  const auto dx_unfused = unfused.backward(dy);

  EXPECT_TRUE(gsfl::test::prop::bitwise_equal(dx_fused, dx_unfused));
  const auto gf = fused.gradients();
  const auto gu = unfused.gradients();
  ASSERT_EQ(gf.size(), gu.size());
  for (std::size_t i = 0; i < gf.size(); ++i) {
    EXPECT_TRUE(gsfl::test::prop::bitwise_equal(*gf[i], *gu[i]))
        << "gradient " << i;
  }
}

// The zoo CNN contains both fusable pairs (conv→relu, dense→relu); the
// whole-model fused pass must match the unfused one bitwise, and the Relu
// layers must stay in the stack (indices, state dicts, summaries intact).
TEST(SequentialFusion, ZooCnnFusesWithoutChangingStructure) {
  Rng rng(24);
  gsfl::nn::CnnConfig config;
  config.image_size = 8;
  config.classes = 4;
  auto fused = gsfl::nn::make_gtsrb_cnn(config, rng);
  auto unfused = fused;
  unfused.set_fusion(false);
  ASSERT_EQ(fused.size(), unfused.size());

  const auto x = Tensor::uniform(Shape{2, 3, 8, 8}, rng, 0, 1);
  EXPECT_TRUE(gsfl::test::prop::bitwise_equal(fused.forward(x, true),
                                              unfused.forward(x, true)));
  EXPECT_EQ(fused.state().size(), unfused.state().size());
}

// Splitting between a fusable layer and its relu severs the pair: the head
// runs the layer unfused, the tail runs the standalone relu — and the
// composition still matches the fused full model bitwise.
TEST(SequentialFusion, SplitMidPairStaysBitwiseConsistent) {
  Rng rng(25);
  auto model = two_layer(rng);  // dense, relu, dense — split at 1 severs
  const auto x = Tensor::uniform(Shape{2, 4}, rng, -1, 1);
  const auto full = model.forward(x, true);

  auto [head, tail] = model.split(1);
  const auto composed = tail.forward(head.forward(x, true), true);
  EXPECT_TRUE(gsfl::test::prop::bitwise_equal(composed, full));
}

TEST(Sequential, MakeMlpTopology) {
  Rng rng(16);
  auto mlp = make_mlp(10, {32, 16}, 4, rng);
  EXPECT_EQ(mlp.size(), 5u);  // dense relu dense relu dense
  EXPECT_EQ(mlp.output_shape(Shape{3, 10}), Shape({3, 4}));
}

}  // namespace
