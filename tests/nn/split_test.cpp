#include <gtest/gtest.h>

#include "gsfl/nn/loss.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/split.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::CnnConfig;
using gsfl::nn::make_gtsrb_cnn;
using gsfl::nn::make_mlp;
using gsfl::nn::Sequential;
using gsfl::nn::SplitModel;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

CnnConfig small_cnn_config() {
  CnnConfig config;
  config.image_size = 8;
  config.classes = 4;
  config.conv1_filters = 4;
  config.conv2_filters = 6;
  config.hidden = 16;
  return config;
}

TEST(SplitModel, ForwardEqualsUnsplitModelExactly) {
  Rng rng(1);
  const auto full = make_gtsrb_cnn(small_cnn_config(), rng);
  const auto x = Tensor::uniform(Shape{3, 3, 8, 8}, rng, 0, 1);

  auto reference = full;
  const auto expected = reference.forward(x, false);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    SplitModel split(full, cut);
    const auto actual = split.forward(x, false);
    EXPECT_EQ(actual, expected) << "cut layer " << cut;
  }
}

TEST(SplitModel, BackwardGradsMatchUnsplitExactly) {
  Rng rng(2);
  const auto full = make_mlp(6, {10, 8}, 3, rng);
  const auto x = Tensor::uniform(Shape{4, 6}, rng, -1, 1);
  const std::int32_t labels[] = {0, 1, 2, 1};

  // Reference: full model forward/backward.
  auto reference = full;
  reference.zero_grad();
  const auto logits_ref = reference.forward(x, true);
  const auto loss_ref = gsfl::nn::softmax_cross_entropy(logits_ref, labels);
  (void)reference.backward(loss_ref.grad_logits);
  const auto ref_grads = reference.gradients();

  // Split at layer 2 (dense|relu // dense|dense...).
  SplitModel split(full, 2);
  split.zero_grad();
  const auto smashed = split.client_forward(x, true);
  const auto logits = split.server_forward(smashed, true);
  const auto loss = gsfl::nn::softmax_cross_entropy(logits, labels);
  EXPECT_DOUBLE_EQ(loss.loss, loss_ref.loss);
  const auto grad_smashed = split.server_backward(loss.grad_logits);
  split.client_backward(grad_smashed);

  std::vector<Tensor*> split_grads;
  for (auto* g : split.client().gradients()) split_grads.push_back(g);
  for (auto* g : split.server().gradients()) split_grads.push_back(g);
  ASSERT_EQ(split_grads.size(), ref_grads.size());
  for (std::size_t i = 0; i < split_grads.size(); ++i) {
    EXPECT_EQ(*split_grads[i], *ref_grads[i]) << "gradient slot " << i;
  }
}

TEST(SplitModel, SmashedShapeMatchesClientOutput) {
  Rng rng(3);
  const auto full = make_gtsrb_cnn(small_cnn_config(), rng);
  SplitModel split(full, 3);  // after conv-relu-pool
  const Shape input{2, 3, 8, 8};
  EXPECT_EQ(split.smashed_shape(input), Shape({2, 4, 4, 4}));
  EXPECT_EQ(split.smashed_bytes(input), 2u * 4u * 4u * 4u * sizeof(float));
}

TEST(SplitModel, StateBytesPartitionTheModel) {
  Rng rng(4);
  const auto full = make_gtsrb_cnn(small_cnn_config(), rng);
  auto full_copy = full;
  const std::size_t total = full_copy.state_bytes();
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    SplitModel split(full, cut);
    EXPECT_EQ(split.client_state_bytes() + split.server_state_bytes(), total)
        << "cut layer " << cut;
  }
}

TEST(SplitModel, FlopsPartitionTheModel) {
  Rng rng(5);
  const auto full = make_gtsrb_cnn(small_cnn_config(), rng);
  auto full_copy = full;
  const Shape input{2, 3, 8, 8};
  const auto total = full_copy.flops(input);
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    SplitModel split(full, cut);
    const auto client = split.client_flops(input);
    const auto server = split.server_flops(input);
    EXPECT_EQ(client.forward + server.forward, total.forward)
        << "cut layer " << cut;
    EXPECT_EQ(client.backward + server.backward, total.backward)
        << "cut layer " << cut;
  }
}

TEST(SplitModel, MergedReassemblesFullModel) {
  Rng rng(6);
  const auto full = make_mlp(5, {7}, 3, rng);
  SplitModel split(full, 1);
  auto merged = split.merged();
  auto original = full;
  const auto x = Tensor::uniform(Shape{2, 5}, rng, -1, 1);
  EXPECT_EQ(merged.forward(x, false), original.forward(x, false));
}

TEST(SplitModel, MergedReflectsTrainingUpdates) {
  Rng rng(7);
  const auto full = make_mlp(4, {6}, 2, rng);
  SplitModel split(full, 1);
  // Nudge a client-side weight; merged() must carry the change.
  split.client().parameters()[0]->at(0) += 1.0f;
  auto merged = split.merged();
  auto original = full;
  EXPECT_NE(merged.state()[0], original.state()[0]);
  EXPECT_FLOAT_EQ(merged.state()[0].at(0),
                  original.state()[0].at(0) + 1.0f);
}

TEST(SplitModel, CutLayerZeroMeansServerOnly) {
  Rng rng(8);
  const auto full = make_mlp(4, {6}, 2, rng);
  SplitModel split(full, 0);
  EXPECT_TRUE(split.client().empty());
  const auto x = Tensor::uniform(Shape{1, 4}, rng, -1, 1);
  // Smashed data is just the input.
  EXPECT_EQ(split.client_forward(x, true), x);
  EXPECT_EQ(split.client_state_bytes(), 0u);
}

TEST(SplitModel, DirectHalvesConstructor) {
  Rng rng(9);
  auto full = make_mlp(4, {6}, 2, rng);
  auto [head, tail] = full.split(2);
  SplitModel split(std::move(head), std::move(tail));
  EXPECT_EQ(split.cut_layer(), 2u);
  const auto x = Tensor::uniform(Shape{1, 4}, rng, -1, 1);
  EXPECT_EQ(split.forward(x, false), full.forward(x, false));
}

}  // namespace
