// AdaptiveController: policy decisions (greedy argmin, the paper's budget
// heuristic, ε-greedy bandit) must be pure functions of (config, candidate
// table, observation history) with round-keyed exploration — so adaptive
// rounds keep every bitwise contract the static schemes pin: thread ×
// pipeline-depth × pack-strategy invariance, checkpoint/resume decision
// replay, and identical controller observations on the clean and
// faulty/quorum round paths.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/schemes/adaptive.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "gsfl/schemes/trainer.hpp"
#include "support/property.hpp"
#include "support/test_world.hpp"

namespace {

using namespace gsfl;
using test::prop::bitwise_equal;

constexpr std::size_t kBatch = 4;

tensor::Shape tiny_batch_shape() { return tensor::Shape{kBatch, 1, 2, 2}; }

std::vector<schemes::CutCost> tiny_cut_table() {
  common::Rng rng(7);
  const auto model = test::make_tiny_model(rng);
  return schemes::enumerate_split_cut_costs(model, tiny_batch_shape());
}

// ---- policy unit tests -----------------------------------------------------

TEST(AdaptiveController, EnumerationSkipsParameterlessHalves) {
  const auto table = tiny_cut_table();
  // flatten→dense→relu→dense: cut 1 leaves a parameter-less client
  // (flatten only) and is dropped; cuts 2 and 3 keep both halves trainable.
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].cut, 2u);
  EXPECT_EQ(table[1].cut, 3u);
  // Moving the relu across the cut moves its flops, nothing else: same
  // smashed payload (8 floats), same client parameters.
  EXPECT_EQ(table[0].smashed_bytes, table[1].smashed_bytes);
  EXPECT_EQ(table[0].client_state_bytes, table[1].client_state_bytes);
  EXPECT_LT(table[0].client_flops, table[1].client_flops);
  EXPECT_GT(table[0].server_flops, table[1].server_flops);
}

TEST(AdaptiveController, GreedyPicksArgminEnumeratedCut) {
  schemes::AdaptiveConfig config;
  config.policy = schemes::AdaptivePolicy::kGreedy;
  schemes::AdaptiveController controller(config);
  controller.set_candidates(tiny_cut_table());

  schemes::AdaptiveObservation obs;
  obs.round = 0;
  obs.cut = 2;
  obs.latency.client_compute = 10.0;  // client-bound round
  obs.latency.server_compute = 1e-3;
  obs.latency.uplink = 0.1;

  // The decision must be the argmin of the controller's own score model.
  std::size_t argmin = 0;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& candidate : controller.candidates()) {
    const double score = controller.score_cut(candidate, obs);
    if (score < best) {
      best = score;
      argmin = candidate.cut;
    }
  }
  const auto decision = controller.decide(obs);
  EXPECT_EQ(decision.cut, argmin);
  // Client-bound: the thinner client side (cut 2) wins.
  EXPECT_EQ(decision.cut, 2u);
  EXPECT_FALSE(decision.changed);
  EXPECT_TRUE(decision.rebalance);

  // Server-bound round: moving the relu onto the client (cut 3) relieves
  // the bottleneck, so greedy flips the cut.
  schemes::AdaptiveObservation server_bound;
  server_bound.round = 1;
  server_bound.cut = 2;
  server_bound.latency.server_compute = 10.0;
  const auto flipped = controller.decide(server_bound);
  EXPECT_EQ(flipped.cut, 3u);
  EXPECT_TRUE(flipped.changed);
}

TEST(AdaptiveController, PaperHeuristicRespectsBudgetAndFilter) {
  schemes::AdaptiveObservation obs;
  obs.cut = 3;
  obs.latency.client_compute = 1.0;

  {  // Everything fits a full budget: min wire bytes, ties to lowest cut.
    schemes::AdaptiveConfig config;
    config.policy = schemes::AdaptivePolicy::kPaper;
    config.paper_compute_budget = 1.0;
    schemes::AdaptiveController controller(config);
    controller.set_candidates(tiny_cut_table());
    EXPECT_EQ(controller.decide(obs).cut, 2u);
  }
  {  // min_cut filter drops cut 2: the heuristic picks from what remains.
    schemes::AdaptiveConfig config;
    config.policy = schemes::AdaptivePolicy::kPaper;
    config.min_cut = 3;
    schemes::AdaptiveController controller(config);
    controller.set_candidates(tiny_cut_table());
    ASSERT_EQ(controller.candidates().size(), 1u);
    EXPECT_EQ(controller.decide(obs).cut, 3u);
  }
  {  // Nothing fits a vanishing budget: fall back to the thinnest client.
    schemes::AdaptiveConfig config;
    config.policy = schemes::AdaptivePolicy::kPaper;
    config.paper_compute_budget = 1e-12;
    schemes::AdaptiveController controller(config);
    controller.set_candidates(tiny_cut_table());
    EXPECT_EQ(controller.decide(obs).cut, 2u);
  }
}

TEST(AdaptiveController, BanditReplaysFromRoundKeyedRng) {
  schemes::AdaptiveConfig config;
  config.policy = schemes::AdaptivePolicy::kBandit;
  config.seed = 42;
  config.epsilon = 0.9;
  schemes::AdaptiveController a(config);
  schemes::AdaptiveController b(config);
  a.set_candidates(tiny_cut_table());
  b.set_candidates(tiny_cut_table());

  std::size_t cut_a = 2;
  std::size_t cut_b = 2;
  std::size_t explored = 0;
  for (std::size_t round = 0; round < 16; ++round) {
    schemes::AdaptiveObservation obs;
    obs.round = round;
    obs.latency.client_compute = 1.0 + 0.25 * static_cast<double>(round % 3);
    obs.latency.uplink = 0.5;
    obs.cut = cut_a;
    const auto da = a.decide(obs);
    obs.cut = cut_b;
    const auto db = b.decide(obs);
    // Same config, same observations ⇒ bitwise the same decision stream.
    EXPECT_EQ(da.cut, db.cut) << "round " << round;
    EXPECT_EQ(da.explored, db.explored) << "round " << round;
    cut_a = da.cut;
    cut_b = db.cut;
    if (!da.explored) continue;
    ++explored;
    // An exploration draw is a pure function of (seed, round): replay it.
    common::Rng root(config.seed);
    common::Rng rng = root.fork(round + 1);
    ASSERT_TRUE(rng.bernoulli(config.epsilon));
    const auto& table = a.candidates();
    const std::size_t expected =
        table[static_cast<std::size_t>(rng.uniform_index(table.size()))].cut;
    EXPECT_EQ(da.cut, expected) << "round " << round;
  }
  EXPECT_GT(explored, 0u);  // ε = 0.9 over 16 rounds: exploration happened
}

TEST(AdaptiveController, BanditStateRoundTripsThroughCheckpoint) {
  schemes::AdaptiveConfig config;
  config.policy = schemes::AdaptivePolicy::kBandit;
  config.seed = 9;
  config.epsilon = 0.3;
  schemes::AdaptiveController warm(config);
  warm.set_candidates(tiny_cut_table());

  std::size_t cut = 2;
  for (std::size_t round = 0; round < 6; ++round) {
    schemes::AdaptiveObservation obs;
    obs.round = round;
    obs.cut = cut;
    obs.latency.client_compute = cut == 2 ? 2.0 : 1.0;
    cut = warm.decide(obs).cut;
  }

  std::stringstream buffer;
  warm.save_state(buffer);
  schemes::AdaptiveController restored(config);
  restored.set_candidates(tiny_cut_table());
  restored.load_state(buffer);
  EXPECT_EQ(restored.rounds_observed(), warm.rounds_observed());

  schemes::AdaptiveObservation next;
  next.round = 6;
  next.cut = cut;
  next.latency.client_compute = 1.5;
  const auto expected = warm.decide(next);
  const auto replayed = restored.decide(next);
  EXPECT_EQ(replayed.cut, expected.cut);
  EXPECT_EQ(replayed.explored, expected.explored);

  // Arm-count mismatch (different candidate filter) must be rejected.
  std::stringstream buffer2;
  warm.save_state(buffer2);
  schemes::AdaptiveConfig narrow = config;
  narrow.min_cut = 3;
  schemes::AdaptiveController mismatched(narrow);
  mismatched.set_candidates(tiny_cut_table());
  EXPECT_THROW(mismatched.load_state(buffer2), std::runtime_error);
}

TEST(AdaptiveController, EmptyCandidateTableKeepsTheCut) {
  schemes::AdaptiveController controller;
  schemes::AdaptiveObservation obs;
  obs.round = 0;
  obs.cut = 0;
  obs.latency.client_compute = 3.0;
  const auto decision = controller.decide(obs);
  EXPECT_EQ(decision.cut, 0u);
  EXPECT_FALSE(decision.changed);
}

TEST(AdaptiveController, PolicyNamesRoundTrip) {
  for (const auto policy : test::prop::policy_matrix()) {
    const auto parsed = schemes::parse_adaptive_policy(
        schemes::to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(schemes::parse_adaptive_policy("off").has_value());
}

// ---- adaptive rounds: scheme integration -----------------------------------

struct AdaptiveRun {
  std::vector<schemes::RoundResult> results;
  nn::StateDict state;
  std::size_t final_cut = 0;
  std::vector<double> shares;
};

void expect_same_adaptive_run(const AdaptiveRun& actual,
                              const AdaptiveRun& reference,
                              const std::string& label) {
  ASSERT_EQ(actual.results.size(), reference.results.size()) << label;
  for (std::size_t r = 0; r < actual.results.size(); ++r) {
    const auto& a = actual.results[r].latency;
    const auto& e = reference.results[r].latency;
    EXPECT_EQ(actual.results[r].train_loss, reference.results[r].train_loss)
        << label << " round " << r;
    EXPECT_EQ(a.client_compute, e.client_compute) << label << " round " << r;
    EXPECT_EQ(a.server_compute, e.server_compute) << label << " round " << r;
    EXPECT_EQ(a.uplink, e.uplink) << label << " round " << r;
    EXPECT_EQ(a.downlink, e.downlink) << label << " round " << r;
    EXPECT_EQ(a.relay, e.relay) << label << " round " << r;
    EXPECT_EQ(a.aggregation, e.aggregation) << label << " round " << r;
  }
  EXPECT_EQ(actual.final_cut, reference.final_cut) << label;
  ASSERT_EQ(actual.shares.size(), reference.shares.size()) << label;
  for (std::size_t g = 0; g < actual.shares.size(); ++g) {
    EXPECT_EQ(actual.shares[g], reference.shares[g])
        << label << " share " << g;
  }
  ASSERT_EQ(actual.state.size(), reference.state.size()) << label;
  for (std::size_t e = 0; e < actual.state.size(); ++e) {
    EXPECT_TRUE(bitwise_equal(actual.state[e], reference.state[e]))
        << label << " state entry " << e;
  }
}

core::GsflConfig adaptive_gsfl_config(bool faulty) {
  core::GsflConfig config;
  config.num_groups = 3;
  config.cut_layer = test::kTinyCut;
  config.grouping = core::GroupingPolicy::kContiguous;
  config.train.batch_size = kBatch;
  if (faulty) {
    config.train.faults.crash_before_rate = 0.2;
    config.train.faults.uplink_loss_rate = 0.1;
    config.train.faults.seed = 0x5EED;
    config.train.round_policy.quorum_fraction = 0.67;
  }
  return config;
}

schemes::AdaptiveConfig adaptive_test_config(schemes::AdaptivePolicy policy) {
  schemes::AdaptiveConfig config;
  config.policy = policy;
  config.epsilon = 0.5;  // short runs still exercise exploration
  config.seed = 0xADA7;
  return config;
}

AdaptiveRun run_gsfl_adaptive(schemes::AdaptivePolicy policy,
                              std::size_t rounds, std::size_t depth,
                              bool faulty = false) {
  const std::size_t clients = 6;
  auto network = test::make_tiny_network(clients);
  auto datasets = test::make_client_datasets(clients, 12, 31);
  common::Rng model_rng(7);
  auto model = test::make_tiny_model(model_rng);
  core::GsflTrainer trainer(network, std::move(datasets), std::move(model),
                            adaptive_gsfl_config(faulty));
  trainer.set_adaptive(std::make_shared<schemes::AdaptiveController>(
      adaptive_test_config(policy)));
  AdaptiveRun out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  out.final_cut = trainer.cut_layer();
  out.shares = trainer.group_shares();
  return out;
}

TEST(AdaptiveRounds, GsflBitwiseAcrossPolicyThreadDepthPackMatrix) {
  test::prop::for_each_policy([&](schemes::AdaptivePolicy policy) {
    const auto reference = run_gsfl_adaptive(policy, 4, 1);
    test::prop::for_each_thread_count([&](std::size_t threads) {
      test::prop::for_each_pipeline_depth([&](std::size_t depth) {
        test::prop::for_each_pack_strategy([&](tensor::PackStrategy pack) {
          const auto run = run_gsfl_adaptive(policy, 4, depth);
          expect_same_adaptive_run(
              run, reference,
              std::string("gsfl ") + test::prop::policy_name(policy) +
                  " t=" + std::to_string(threads) +
                  " d=" + std::to_string(depth) + " pack=" +
                  test::prop::pack_strategy_name(pack));
        });
      });
    });
  });
}

TEST(AdaptiveRounds, FaultyQuorumRoundsBitwiseAcrossDepths) {
  test::prop::for_each_policy([&](schemes::AdaptivePolicy policy) {
    const auto reference = run_gsfl_adaptive(policy, 5, 1, /*faulty=*/true);
    test::prop::for_each_pipeline_depth([&](std::size_t depth) {
      const auto run = run_gsfl_adaptive(policy, 5, depth, /*faulty=*/true);
      expect_same_adaptive_run(run, reference,
                               std::string("gsfl faulty ") +
                                   test::prop::policy_name(policy) +
                                   " d=" + std::to_string(depth));
    });
  });
}

// Late/faulty reporters must feed the controller the very observation the
// round published: replaying the published RoundResults through a standalone
// controller must reproduce the trainer's cut trajectory exactly.
TEST(AdaptiveRounds, FaultyRoundsFeedPublishedObservationsToController) {
  const std::size_t clients = 6;
  auto network = test::make_tiny_network(clients);
  auto datasets = test::make_client_datasets(clients, 12, 31);
  common::Rng model_rng(7);
  auto model = test::make_tiny_model(model_rng);
  const auto table =
      schemes::enumerate_split_cut_costs(model, tiny_batch_shape());
  core::GsflTrainer trainer(network, std::move(datasets), std::move(model),
                            adaptive_gsfl_config(/*faulty=*/true));
  const auto policy = schemes::AdaptivePolicy::kBandit;
  trainer.set_adaptive(std::make_shared<schemes::AdaptiveController>(
      adaptive_test_config(policy)));

  schemes::AdaptiveController shadow(adaptive_test_config(policy));
  shadow.set_candidates(table);

  for (std::size_t round = 0; round < 6; ++round) {
    const std::size_t cut_before = trainer.cut_layer();
    const auto result = trainer.run_round();
    schemes::AdaptiveObservation obs;
    obs.round = round;
    obs.cut = cut_before;
    obs.latency = result.latency;
    const auto expected = shadow.decide(obs);
    EXPECT_EQ(trainer.cut_layer(), expected.cut) << "round " << round;
  }
}

AdaptiveRun run_sfl_adaptive(schemes::AdaptivePolicy policy,
                             std::size_t rounds, std::size_t depth) {
  const std::size_t clients = 5;
  auto network = test::make_tiny_network(clients);
  auto datasets = test::make_client_datasets(clients, 12, 13);
  common::Rng model_rng(9);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = kBatch;
  schemes::SplitFedTrainer trainer(network, std::move(datasets),
                                   std::move(model), test::kTinyCut, config);
  trainer.set_adaptive(std::make_shared<schemes::AdaptiveController>(
      adaptive_test_config(policy)));
  AdaptiveRun out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  out.final_cut = trainer.cut_layer();
  return out;
}

TEST(AdaptiveRounds, SflBitwiseAcrossPolicyAndDepthMatrix) {
  test::prop::for_each_policy([&](schemes::AdaptivePolicy policy) {
    const auto reference = run_sfl_adaptive(policy, 4, 1);
    test::prop::for_each_thread_count([&](std::size_t threads) {
      test::prop::for_each_pipeline_depth([&](std::size_t depth) {
        const auto run = run_sfl_adaptive(policy, 4, depth);
        expect_same_adaptive_run(run, reference,
                                 std::string("sfl ") +
                                     test::prop::policy_name(policy) +
                                     " t=" + std::to_string(threads) +
                                     " d=" + std::to_string(depth));
      });
    });
  });
}

// FL has no cut: a controller attached to FedAvg must be a pure observer.
TEST(AdaptiveRounds, FedAvgControllerIsNoop) {
  const auto run_fl = [](bool with_controller) {
    const std::size_t clients = 4;
    auto network = test::make_tiny_network(clients);
    auto datasets = test::make_client_datasets(clients, 12, 17);
    common::Rng model_rng(5);
    auto model = test::make_tiny_model(model_rng);
    schemes::TrainConfig config;
    config.batch_size = kBatch;
    schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                   std::move(model), config);
    std::shared_ptr<schemes::AdaptiveController> controller;
    if (with_controller) {
      controller = std::make_shared<schemes::AdaptiveController>(
          adaptive_test_config(schemes::AdaptivePolicy::kGreedy));
      trainer.set_adaptive(controller);
    }
    AdaptiveRun out;
    out.results = schemes::run_rounds_pipelined(trainer, 3, 2);
    out.state = trainer.global_model().state();
    if (controller) {
      EXPECT_TRUE(controller->candidates().empty());
      EXPECT_EQ(controller->rounds_observed(), 3u);
      EXPECT_FALSE(controller->last_decision().changed);
    }
    return out;
  };
  expect_same_adaptive_run(run_fl(true), run_fl(false), "fl controller noop");
}

// ---- checkpoint / resume ---------------------------------------------------

TEST(AdaptiveResume, CheckpointReplaysIdenticalDecisions) {
  const auto policy = schemes::AdaptivePolicy::kBandit;
  const auto make_trainer = [](std::shared_ptr<net::WirelessNetwork> network) {
    auto datasets = test::make_client_datasets(6, 12, 31);
    common::Rng model_rng(7);
    auto model = test::make_tiny_model(model_rng);
    return std::make_unique<core::GsflTrainer>(
        *network, std::move(datasets), std::move(model),
        adaptive_gsfl_config(false));
  };
  auto network = std::make_shared<net::WirelessNetwork>(
      test::make_tiny_network(6));

  // Uninterrupted reference: 6 rounds straight.
  auto straight = make_trainer(network);
  straight->set_adaptive(std::make_shared<schemes::AdaptiveController>(
      adaptive_test_config(policy)));
  std::vector<schemes::RoundResult> straight_tail;
  for (std::size_t r = 0; r < 6; ++r) {
    auto result = straight->run_round();
    if (r >= 3) straight_tail.push_back(std::move(result));
  }

  // Interrupted run: 3 rounds, checkpoint, restore into a fresh trainer +
  // fresh controller, 3 more rounds.
  std::stringstream checkpoint;
  {
    auto first = make_trainer(network);
    first->set_adaptive(std::make_shared<schemes::AdaptiveController>(
        adaptive_test_config(policy)));
    for (std::size_t r = 0; r < 3; ++r) (void)first->run_round();
    first->save_state(checkpoint);
  }
  auto resumed = make_trainer(network);
  resumed->set_adaptive(std::make_shared<schemes::AdaptiveController>(
      adaptive_test_config(policy)));
  resumed->load_state(checkpoint);
  EXPECT_EQ(resumed->rounds_completed(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    const auto result = resumed->run_round();
    const auto& expected = straight_tail[r];
    EXPECT_EQ(result.train_loss, expected.train_loss) << "round " << 3 + r;
    EXPECT_EQ(result.latency.total(), expected.latency.total())
        << "round " << 3 + r;
  }
  EXPECT_EQ(resumed->cut_layer(), straight->cut_layer());
  EXPECT_TRUE(
      test::states_equal(resumed->global_model(), straight->global_model()));
}

TEST(AdaptiveResume, ControllerPresenceMustMatchCheckpoint) {
  auto network = std::make_shared<net::WirelessNetwork>(
      test::make_tiny_network(6));
  const auto make_trainer = [&network] {
    auto datasets = test::make_client_datasets(6, 12, 31);
    common::Rng model_rng(7);
    auto model = test::make_tiny_model(model_rng);
    return std::make_unique<core::GsflTrainer>(
        *network, std::move(datasets), std::move(model),
        adaptive_gsfl_config(false));
  };
  std::stringstream checkpoint;
  {
    auto with = make_trainer();
    with->set_adaptive(std::make_shared<schemes::AdaptiveController>(
        adaptive_test_config(schemes::AdaptivePolicy::kGreedy)));
    (void)with->run_round();
    with->save_state(checkpoint);
  }
  auto without = make_trainer();
  EXPECT_THROW(without->load_state(checkpoint), std::runtime_error);
}

// ---- rebalance × cut-change regression -------------------------------------

// A controller-triggered cut change and the share re-balance land in the
// same post-publish slot: the re-balance must renormalize against the *new*
// cut (the swap happens first), keep the shares summing to 1, and preserve
// the starvation floor.
TEST(AdaptiveRebalance, CutChangeAndRebalanceInSameRound) {
  const std::size_t clients = 6;
  auto network = test::make_tiny_network(clients);
  auto datasets = test::make_client_datasets(clients, 12, 31);
  common::Rng model_rng(7);
  auto model = test::make_tiny_model(model_rng);
  const auto full_model = model;  // for the expected re-split geometry
  core::GsflTrainer trainer(network, std::move(datasets), std::move(model),
                            adaptive_gsfl_config(false));

  // Pin the candidate set to {3}: the first decision must move 2 → 3.
  schemes::AdaptiveConfig config;
  config.policy = schemes::AdaptivePolicy::kGreedy;
  config.min_cut = 3;
  config.max_cut = 3;
  trainer.set_adaptive(
      std::make_shared<schemes::AdaptiveController>(config));
  ASSERT_EQ(trainer.cut_layer(), test::kTinyCut);

  (void)trainer.run_round();
  EXPECT_EQ(trainer.cut_layer(), 3u);
  EXPECT_TRUE(trainer.adaptive()->last_decision().changed);

  // The cached wire size tracks the re-split client half.
  auto [head, tail] = full_model.split(3);
  (void)tail;
  EXPECT_EQ(trainer.client_model_bytes(), head.state_bytes());

  // Shares were re-balanced after the swap: normalized, floored, and moved
  // off uniform (the tiny network's distances are heterogeneous).
  const auto& shares = trainer.group_shares();
  ASSERT_EQ(shares.size(), trainer.num_groups());
  const double floor = 0.05 / static_cast<double>(shares.size());
  double sum = 0.0;
  bool off_uniform = false;
  for (const double share : shares) {
    EXPECT_GE(share, floor - 1e-12);
    sum += share;
    if (std::abs(share - 1.0 / static_cast<double>(shares.size())) > 1e-9) {
      off_uniform = true;
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_TRUE(off_uniform);

  // The next round trains at the new cut without incident, and the pinned
  // candidate set keeps it there.
  (void)trainer.run_round();
  EXPECT_EQ(trainer.cut_layer(), 3u);
}

// Under BandwidthPolicy::kAdaptive the publish path already re-balanced;
// the controller must defer (re-balancing twice would re-price the chains
// against freshly rewritten shares). With the cut pinned, a controller on
// top of kAdaptive must be a pure observer.
TEST(AdaptiveRebalance, ControllerDefersToAdaptiveBandwidthPolicy) {
  const auto run = [](bool with_controller) {
    const std::size_t clients = 6;
    auto network = test::make_tiny_network(clients);
    auto datasets = test::make_client_datasets(clients, 12, 31);
    common::Rng model_rng(7);
    auto model = test::make_tiny_model(model_rng);
    auto config = adaptive_gsfl_config(false);
    config.bandwidth = core::BandwidthPolicy::kAdaptive;
    core::GsflTrainer trainer(network, std::move(datasets), std::move(model),
                              config);
    if (with_controller) {
      schemes::AdaptiveConfig acfg;
      acfg.policy = schemes::AdaptivePolicy::kGreedy;
      acfg.min_cut = test::kTinyCut;
      acfg.max_cut = test::kTinyCut;  // pin the cut: observer only
      trainer.set_adaptive(
          std::make_shared<schemes::AdaptiveController>(acfg));
    }
    AdaptiveRun out;
    out.results = schemes::run_rounds_pipelined(trainer, 4, 2);
    out.state = trainer.global_model().state();
    out.final_cut = trainer.cut_layer();
    out.shares = trainer.group_shares();
    return out;
  };
  expect_same_adaptive_run(run(true), run(false),
                           "kAdaptive bandwidth + pinned controller");
}

}  // namespace
