#include <gtest/gtest.h>

#include "gsfl/schemes/aggregate.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::StateDict;
using gsfl::schemes::aggregation_flops;
using gsfl::schemes::fedavg_models;
using gsfl::schemes::fedavg_states;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

StateDict make_state(float value) {
  StateDict s;
  s.push_back(Tensor::full(Shape{2, 2}, value));
  s.push_back(Tensor::full(Shape{3}, value * 10));
  return s;
}

TEST(FedAvg, IdenticalReplicasAreFixedPoint) {
  const std::vector<StateDict> states = {make_state(2.0f), make_state(2.0f),
                                         make_state(2.0f)};
  const double weights[] = {1.0, 1.0, 1.0};
  const auto avg = fedavg_states(states, weights);
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_EQ(avg[0], states[0][0]);
  EXPECT_EQ(avg[1], states[0][1]);
}

TEST(FedAvg, EqualWeightsGiveMean) {
  const std::vector<StateDict> states = {make_state(1.0f), make_state(3.0f)};
  const double weights[] = {1.0, 1.0};
  const auto avg = fedavg_states(states, weights);
  EXPECT_FLOAT_EQ(avg[0].at(0), 2.0f);
  EXPECT_FLOAT_EQ(avg[1].at(0), 20.0f);
}

TEST(FedAvg, WeightsNeedNotBeNormalized) {
  const std::vector<StateDict> states = {make_state(0.0f), make_state(4.0f)};
  const double weights[] = {30.0, 10.0};  // effective 3/4, 1/4
  const auto avg = fedavg_states(states, weights);
  EXPECT_FLOAT_EQ(avg[0].at(0), 1.0f);
}

TEST(FedAvg, SampleWeightedMeanMatchesHandComputation) {
  const std::vector<StateDict> states = {make_state(1.0f), make_state(2.0f),
                                         make_state(6.0f)};
  const double weights[] = {10.0, 20.0, 10.0};
  const auto avg = fedavg_states(states, weights);
  // (10·1 + 20·2 + 10·6) / 40 = 110/40.
  EXPECT_NEAR(avg[0].at(0), 110.0f / 40.0f, 1e-6);
}

TEST(FedAvg, ZeroWeightReplicaIgnored) {
  const std::vector<StateDict> states = {make_state(1.0f),
                                         make_state(100.0f)};
  const double weights[] = {1.0, 0.0};
  const auto avg = fedavg_states(states, weights);
  EXPECT_FLOAT_EQ(avg[0].at(0), 1.0f);
}

TEST(FedAvg, Validation) {
  const std::vector<StateDict> states = {make_state(1.0f)};
  const double ok[] = {1.0};
  const double neg[] = {-1.0};
  const double zero[] = {0.0};
  const double two[] = {1.0, 1.0};
  EXPECT_NO_THROW(fedavg_states(states, ok));
  EXPECT_THROW(fedavg_states(states, neg), std::invalid_argument);
  EXPECT_THROW(fedavg_states(states, zero), std::invalid_argument);
  EXPECT_THROW(fedavg_states(states, two), std::invalid_argument);
  EXPECT_THROW(fedavg_states({}, {}), std::invalid_argument);

  std::vector<StateDict> mismatched = {make_state(1.0f), make_state(2.0f)};
  mismatched[1].pop_back();
  EXPECT_THROW(fedavg_states(mismatched, two), std::invalid_argument);
}

TEST(FedAvg, ModelsOverloadMatchesStates) {
  Rng rng(1);
  auto a = gsfl::test::make_tiny_model(rng);
  auto b = gsfl::test::make_tiny_model(rng);  // different weights
  const gsfl::nn::Sequential* models[] = {&a, &b};
  const double weights[] = {1.0, 3.0};
  const auto via_models = fedavg_models(models, weights);
  const std::vector<StateDict> states = {a.state(), b.state()};
  const auto via_states = fedavg_states(states, weights);
  ASSERT_EQ(via_models.size(), via_states.size());
  for (std::size_t i = 0; i < via_models.size(); ++i) {
    EXPECT_EQ(via_models[i], via_states[i]);
  }
}

TEST(FedAvg, AggregatedStateLoadsBack) {
  Rng rng(2);
  auto a = gsfl::test::make_tiny_model(rng);
  auto b = gsfl::test::make_tiny_model(rng);
  const std::vector<StateDict> states = {a.state(), b.state()};
  const double weights[] = {1.0, 1.0};
  auto c = gsfl::test::make_tiny_model(rng);
  EXPECT_NO_THROW(c.load_state(fedavg_states(states, weights)));
}

TEST(AggregationFlops, TwoFlopsPerScalarPerReplica) {
  EXPECT_DOUBLE_EQ(aggregation_flops(100, 6), 1200.0);
  EXPECT_DOUBLE_EQ(aggregation_flops(0, 6), 0.0);
}

}  // namespace
