#include <gtest/gtest.h>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/schemes/aggregate.hpp"
#include "support/property.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::StateDict;
using gsfl::schemes::aggregation_flops;
using gsfl::schemes::fedavg_models;
using gsfl::schemes::fedavg_states;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
namespace prop = gsfl::test::prop;

StateDict make_state(float value) {
  StateDict s;
  s.push_back(Tensor::full(Shape{2, 2}, value));
  s.push_back(Tensor::full(Shape{3}, value * 10));
  return s;
}

TEST(FedAvg, IdenticalReplicasAreFixedPoint) {
  const std::vector<StateDict> states = {make_state(2.0f), make_state(2.0f),
                                         make_state(2.0f)};
  const double weights[] = {1.0, 1.0, 1.0};
  const auto avg = fedavg_states(states, weights);
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_EQ(avg[0], states[0][0]);
  EXPECT_EQ(avg[1], states[0][1]);
}

TEST(FedAvg, EqualWeightsGiveMean) {
  const std::vector<StateDict> states = {make_state(1.0f), make_state(3.0f)};
  const double weights[] = {1.0, 1.0};
  const auto avg = fedavg_states(states, weights);
  EXPECT_FLOAT_EQ(avg[0].at(0), 2.0f);
  EXPECT_FLOAT_EQ(avg[1].at(0), 20.0f);
}

TEST(FedAvg, WeightsNeedNotBeNormalized) {
  const std::vector<StateDict> states = {make_state(0.0f), make_state(4.0f)};
  const double weights[] = {30.0, 10.0};  // effective 3/4, 1/4
  const auto avg = fedavg_states(states, weights);
  EXPECT_FLOAT_EQ(avg[0].at(0), 1.0f);
}

TEST(FedAvg, SampleWeightedMeanMatchesHandComputation) {
  const std::vector<StateDict> states = {make_state(1.0f), make_state(2.0f),
                                         make_state(6.0f)};
  const double weights[] = {10.0, 20.0, 10.0};
  const auto avg = fedavg_states(states, weights);
  // (10·1 + 20·2 + 10·6) / 40 = 110/40.
  EXPECT_NEAR(avg[0].at(0), 110.0f / 40.0f, 1e-6);
}

TEST(FedAvg, ZeroWeightReplicaIgnored) {
  const std::vector<StateDict> states = {make_state(1.0f),
                                         make_state(100.0f)};
  const double weights[] = {1.0, 0.0};
  const auto avg = fedavg_states(states, weights);
  EXPECT_FLOAT_EQ(avg[0].at(0), 1.0f);
}

TEST(FedAvg, Validation) {
  const std::vector<StateDict> states = {make_state(1.0f)};
  const double ok[] = {1.0};
  const double neg[] = {-1.0};
  const double zero[] = {0.0};
  const double two[] = {1.0, 1.0};
  EXPECT_NO_THROW(fedavg_states(states, ok));
  EXPECT_THROW(fedavg_states(states, neg), std::invalid_argument);
  EXPECT_THROW(fedavg_states(states, zero), std::invalid_argument);
  EXPECT_THROW(fedavg_states(states, two), std::invalid_argument);
  EXPECT_THROW(fedavg_states({}, {}), std::invalid_argument);

  std::vector<StateDict> mismatched = {make_state(1.0f), make_state(2.0f)};
  mismatched[1].pop_back();
  EXPECT_THROW(fedavg_states(mismatched, two), std::invalid_argument);
}

TEST(FedAvg, ModelsOverloadMatchesStates) {
  Rng rng(1);
  auto a = gsfl::test::make_tiny_model(rng);
  auto b = gsfl::test::make_tiny_model(rng);  // different weights
  const gsfl::nn::Sequential* models[] = {&a, &b};
  const double weights[] = {1.0, 3.0};
  const auto via_models = fedavg_models(models, weights);
  const std::vector<StateDict> states = {a.state(), b.state()};
  const auto via_states = fedavg_states(states, weights);
  ASSERT_EQ(via_models.size(), via_states.size());
  for (std::size_t i = 0; i < via_models.size(); ++i) {
    EXPECT_EQ(via_models[i], via_states[i]);
  }
}

TEST(FedAvg, AggregatedStateLoadsBack) {
  Rng rng(2);
  auto a = gsfl::test::make_tiny_model(rng);
  auto b = gsfl::test::make_tiny_model(rng);
  const std::vector<StateDict> states = {a.state(), b.state()};
  const double weights[] = {1.0, 1.0};
  auto c = gsfl::test::make_tiny_model(rng);
  EXPECT_NO_THROW(c.load_state(fedavg_states(states, weights)));
}

// ---- property suites --------------------------------------------------------

StateDict random_state(std::uint64_t seed, std::size_t entries = 4,
                       std::size_t entry_size = 64) {
  Rng rng(seed);
  StateDict s;
  s.reserve(entries);
  for (std::size_t e = 0; e < entries; ++e) {
    s.push_back(Tensor::uniform(Shape{entry_size}, rng, -1.0f, 1.0f));
  }
  return s;
}

// A single client is the identity: its normalized weight is exactly 1.0 for
// any positive raw weight, so the average must equal the input bitwise.
TEST(FedAvgProperties, SingleClientIsBitwiseIdentity) {
  const std::vector<StateDict> states = {random_state(91)};
  for (const double w : {1.0, 0.25, 3750.0}) {
    const double weights[] = {w};
    const auto avg = fedavg_states(states, weights);
    ASSERT_EQ(avg.size(), states[0].size());
    for (std::size_t e = 0; e < avg.size(); ++e) {
      // w / w == 1.0 exactly; 1.0f·x + 0 folds back to x bitwise.
      EXPECT_TRUE(prop::bitwise_equal(avg[e], states[0][e])) << "entry " << e;
    }
  }
}

// Zero-weight clients among positive ones contribute exactly nothing: the
// result is bitwise the same as aggregating with those replicas' weights
// removed... up to the fold skipping — here we pin the semantic property
// that the averaged values match the positive-only hand fold.
TEST(FedAvgProperties, ZeroWeightClientsAmongPositiveOnesAreIgnored) {
  const std::vector<StateDict> states = {random_state(92), random_state(93),
                                         random_state(94)};
  const double weights[] = {3.0, 0.0, 1.0};
  const auto avg = fedavg_states(states, weights);
  for (std::size_t e = 0; e < avg.size(); ++e) {
    const auto a = states[0][e].data();
    const auto b = states[2][e].data();
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(avg[e].at(i), 0.75f * a[i] + 0.25f * b[i], 1e-6)
          << "entry " << e << " index " << i;
    }
  }
}

class FedAvgThreads : public ::testing::Test {
 protected:
  void TearDown() override { gsfl::common::set_global_threads(0); }
};

// The parallel entry fold must return bitwise-identical state dicts for
// every thread count, including lane counts above the entry count.
TEST_F(FedAvgThreads, AggregationIsThreadCountInvariant) {
  std::vector<StateDict> states;
  std::vector<double> weights;
  for (std::size_t k = 0; k < 7; ++k) {
    states.push_back(random_state(100 + k, /*entries=*/10, /*entry_size=*/33));
    weights.push_back(static_cast<double>(k % 3 + 1));
  }
  gsfl::common::set_global_threads(1);
  const auto serial = fedavg_states(states, weights);
  prop::for_each_thread_count([&](std::size_t threads) {
    const auto wide = fedavg_states(states, weights);
    ASSERT_EQ(wide.size(), serial.size());
    for (std::size_t e = 0; e < wide.size(); ++e) {
      ASSERT_TRUE(prop::bitwise_equal(wide[e], serial[e]))
          << "entry " << e << " threads=" << threads;
    }
  });
}

// Large-state stress: paper-scale entry sizes (hundreds of thousands of
// scalars) across many replicas — exercises the parallel fold on buffers
// that span many cache lines per lane and pins the weighted mean against a
// double-precision reference.
TEST_F(FedAvgThreads, LargeStateStressMatchesDoubleReference) {
  constexpr std::size_t kClients = 12;
  constexpr std::size_t kEntries = 6;
  constexpr std::size_t kEntrySize = 100'000;
  std::vector<StateDict> states;
  std::vector<double> weights;
  states.reserve(kClients);
  for (std::size_t k = 0; k < kClients; ++k) {
    states.push_back(random_state(200 + k, kEntries, kEntrySize));
    weights.push_back(static_cast<double>(2 * k + 1));
  }
  gsfl::common::set_global_threads(4);
  const auto avg = fedavg_states(states, weights);

  double weight_sum = 0.0;
  for (const double w : weights) weight_sum += w;
  Rng probe(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto e = static_cast<std::size_t>(probe.uniform_index(kEntries));
    const auto i = static_cast<std::size_t>(probe.uniform_index(kEntrySize));
    double expected = 0.0;
    for (std::size_t k = 0; k < kClients; ++k) {
      expected += weights[k] / weight_sum * states[k][e].at(i);
    }
    EXPECT_NEAR(avg[e].at(i), expected, 1e-5)
        << "entry " << e << " index " << i;
  }
}

// Pinned FLOP model: 2·P·K normalized-weight multiply-adds plus one
// normalization divide per replica.
TEST(AggregationFlops, CountsMacsPlusNormalizationDivides) {
  EXPECT_DOUBLE_EQ(aggregation_flops(100, 6), 1206.0);
  EXPECT_DOUBLE_EQ(aggregation_flops(0, 6), 6.0);
  EXPECT_DOUBLE_EQ(aggregation_flops(1, 1), 3.0);
}

}  // namespace
