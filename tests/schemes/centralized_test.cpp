#include <gtest/gtest.h>

#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/schemes/centralized.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::schemes::CentralizedTrainer;
using gsfl::schemes::TrainConfig;

TEST(Centralized, LossDecreasesOverRounds) {
  const auto network = gsfl::test::make_tiny_network(3);
  Rng rng(1);
  TrainConfig config;
  config.learning_rate = 0.1;
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(3, 16, 1),
                             gsfl::test::make_tiny_model(rng), config);
  const double first = trainer.run_round().train_loss;
  double last = first;
  for (int i = 0; i < 10; ++i) last = trainer.run_round().train_loss;
  EXPECT_LT(last, first * 0.8);
}

TEST(Centralized, LearnsSeparableTask) {
  const auto network = gsfl::test::make_tiny_network(3);
  Rng rng(2);
  Rng test_rng(55);
  const auto test_set = gsfl::test::make_separable_dataset(48, test_rng);
  TrainConfig config;
  config.learning_rate = 0.2;
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(3, 24, 2),
                             gsfl::test::make_tiny_model(rng), config);
  for (int i = 0; i < 30; ++i) (void)trainer.run_round();
  auto model = trainer.global_model();
  EXPECT_GT(gsfl::metrics::evaluate(model, test_set).accuracy, 0.9);
}

TEST(Centralized, RawDataUploadChargedExactlyOnce) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(3);
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(2, 16, 3),
                             gsfl::test::make_tiny_model(rng), TrainConfig{});
  const auto first = trainer.run_round().latency;
  const auto second = trainer.run_round().latency;
  EXPECT_GT(first.uplink, 0.0);
  EXPECT_DOUBLE_EQ(second.uplink, 0.0);
  // Compute cost is identical every round.
  EXPECT_NEAR(first.server_compute, second.server_compute, 1e-9);
}

TEST(Centralized, AllComputeOnServer) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(4);
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(2, 16, 4),
                             gsfl::test::make_tiny_model(rng), TrainConfig{});
  const auto latency = trainer.run_round().latency;
  EXPECT_DOUBLE_EQ(latency.client_compute, 0.0);
  EXPECT_GT(latency.server_compute, 0.0);
  EXPECT_DOUBLE_EQ(latency.relay, 0.0);
  EXPECT_DOUBLE_EQ(latency.aggregation, 0.0);
  EXPECT_DOUBLE_EQ(latency.downlink, 0.0);
}

TEST(Centralized, GlobalModelIsIndependentCopy) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(5);
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(2, 8, 5),
                             gsfl::test::make_tiny_model(rng), TrainConfig{});
  auto snapshot = trainer.global_model();
  (void)trainer.run_round();
  auto after = trainer.global_model();
  EXPECT_FALSE(gsfl::test::states_equal(snapshot, after));
}

}  // namespace
