#include <gtest/gtest.h>

#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/schemes/centralized.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::schemes::CentralizedTrainer;
using gsfl::schemes::FedAvgTrainer;
using gsfl::schemes::TrainConfig;

TEST(FedAvgTrainer, SingleClientOneEpochEqualsCentralized) {
  // FL with one client and one local epoch is CL on that client's data,
  // step for step — both use the same sampler stream for client 0.
  const auto network = gsfl::test::make_tiny_network(1);
  const auto data = gsfl::test::make_client_datasets(1, 16, 7);
  Rng rng(7);
  const auto init = gsfl::test::make_tiny_model(rng);
  TrainConfig config;
  config.local_epochs = 1;

  FedAvgTrainer fl(network, data, init, config);
  CentralizedTrainer cl(network, data, init, config);

  for (int round = 0; round < 4; ++round) {
    (void)fl.run_round();
    (void)cl.run_round();
    EXPECT_TRUE(gsfl::test::states_equal(fl.global_model(),
                                         cl.global_model()))
        << "diverged at round " << round;
  }
}

TEST(FedAvgTrainer, LossDecreasesAndModelLearns) {
  const auto network = gsfl::test::make_tiny_network(4);
  Rng rng(8);
  Rng test_rng(66);
  const auto test_set = gsfl::test::make_separable_dataset(48, test_rng);
  TrainConfig config;
  config.learning_rate = 0.15;
  FedAvgTrainer trainer(network, gsfl::test::make_client_datasets(4, 16, 8),
                        gsfl::test::make_tiny_model(rng), config);
  const double first = trainer.run_round().train_loss;
  for (int i = 0; i < 25; ++i) (void)trainer.run_round();
  auto model = trainer.global_model();
  EXPECT_GT(gsfl::metrics::evaluate(model, test_set).accuracy, 0.85);
  EXPECT_LT(trainer.run_round().train_loss, first);
}

TEST(FedAvgTrainer, LatencyHasAllFlComponents) {
  const auto network = gsfl::test::make_tiny_network(3);
  Rng rng(9);
  FedAvgTrainer trainer(network, gsfl::test::make_client_datasets(3, 8, 9),
                        gsfl::test::make_tiny_model(rng), TrainConfig{});
  const auto latency = trainer.run_round().latency;
  EXPECT_GT(latency.downlink, 0.0);    // model distribution
  EXPECT_GT(latency.client_compute, 0.0);
  EXPECT_GT(latency.uplink, 0.0);      // model upload
  EXPECT_GT(latency.aggregation, 0.0);
  EXPECT_DOUBLE_EQ(latency.server_compute, 0.0);  // no split training
  EXPECT_DOUBLE_EQ(latency.relay, 0.0);
}

TEST(FedAvgTrainer, MoreLocalEpochsMoreComputePerRound) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(10);
  const auto data = gsfl::test::make_client_datasets(2, 16, 10);
  const auto init = gsfl::test::make_tiny_model(rng);

  TrainConfig one;
  one.local_epochs = 1;
  TrainConfig three;
  three.local_epochs = 3;
  FedAvgTrainer fl1(network, data, init, one);
  FedAvgTrainer fl3(network, data, init, three);
  const auto l1 = fl1.run_round().latency;
  const auto l3 = fl3.run_round().latency;
  EXPECT_NEAR(l3.client_compute / l1.client_compute, 3.0, 0.01);
  // Communication cost is per-round, not per-epoch.
  EXPECT_NEAR(l3.uplink, l1.uplink, 1e-9);
}

TEST(FedAvgTrainer, RoundLatencyIsSlowestClientChain) {
  // With heterogeneous devices, the round span must exceed what the fastest
  // client alone would need and match a single-client run of the slowest.
  gsfl::net::NetworkConfig config;
  std::vector<gsfl::net::DeviceProfile> devices(2);
  devices[0].distance_m = 20.0;
  devices[0].compute_flops = 1e10;  // fast
  devices[1].distance_m = 20.0;
  devices[1].compute_flops = 1e8;   // slow
  const gsfl::net::WirelessNetwork network(config, std::move(devices));

  Rng rng(11);
  const auto data = gsfl::test::make_client_datasets(2, 16, 11);
  FedAvgTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                        TrainConfig{});
  const auto latency = trainer.run_round().latency;

  // The slow client's compute dominates: 100× slower device.
  EXPECT_GT(latency.client_compute, 0.0);
  // Attribution follows the critical client, whose compute time is ~100×
  // the fast one's; verify the magnitude is the slow one's.
  gsfl::net::NetworkConfig config2;
  std::vector<gsfl::net::DeviceProfile> only_slow(1);
  only_slow[0].distance_m = 20.0;
  only_slow[0].compute_flops = 1e8;
  const gsfl::net::WirelessNetwork slow_net(config2, std::move(only_slow));
  FedAvgTrainer slow_only(slow_net,
                          {gsfl::test::make_client_datasets(2, 16, 11)[1]},
                          gsfl::test::make_tiny_model(rng), TrainConfig{});
  const auto slow_latency = slow_only.run_round().latency;
  EXPECT_NEAR(latency.client_compute, slow_latency.client_compute, 1e-6);
}

TEST(FedAvgTrainer, AggregationEqualizesIdenticalClients) {
  // Two clients with identical data and identical sampler streams produce
  // identical local models; FedAvg of identical models = that model, so
  // training still progresses (loss decreases).
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(12);
  auto one_client = gsfl::test::make_client_datasets(1, 16, 12);
  std::vector<gsfl::data::Dataset> duplicated = {one_client[0], one_client[0]};
  FedAvgTrainer trainer(network, duplicated, gsfl::test::make_tiny_model(rng),
                        TrainConfig{});
  const double first = trainer.run_round().train_loss;
  double last = first;
  for (int i = 0; i < 8; ++i) last = trainer.run_round().train_loss;
  EXPECT_LT(last, first);
}

}  // namespace
