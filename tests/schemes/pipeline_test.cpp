// Pipelined rounds: the submit/aggregate split on the async lane must be
// bitwise identical to the barriered run_round loop — same final model
// bits, same per-round losses, exactly equal simulated latencies — across
// the property harness's thread × pipeline-depth matrix, for every scheme
// with a pipelined decomposition (SFL, FL, GSFL) and for the default
// whole-round fallback. Worlds are deliberately heterogeneous (straggler
// clients, failures, adaptive bandwidth) so the eager ordered fold really
// does run while stragglers compute.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/schemes/centralized.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "gsfl/schemes/trainer.hpp"
#include "support/property.hpp"
#include "support/test_world.hpp"

namespace {

using namespace gsfl;
using test::prop::bitwise_equal;

// Client datasets with a deliberate straggler: sizes grow steeply, so the
// last index is still computing while earlier outcomes fold.
std::vector<data::Dataset> make_straggler_datasets(std::size_t num_clients,
                                                   std::uint64_t seed) {
  common::Rng root(seed);
  std::vector<data::Dataset> out;
  out.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    auto rng = root.fork(100 + c);
    const std::size_t samples = c + 1 == num_clients ? 24 : 4 + 2 * c;
    out.push_back(test::make_separable_dataset(samples, rng));
  }
  return out;
}

struct RunOutput {
  std::vector<schemes::RoundResult> results;
  nn::StateDict state;
};

void expect_same_run(const RunOutput& actual, const RunOutput& reference,
                     const char* label) {
  ASSERT_EQ(actual.results.size(), reference.results.size()) << label;
  for (std::size_t r = 0; r < actual.results.size(); ++r) {
    const auto& a = actual.results[r];
    const auto& e = reference.results[r];
    EXPECT_EQ(a.train_loss, e.train_loss) << label << " round " << r;
    EXPECT_EQ(a.latency.client_compute, e.latency.client_compute)
        << label << " round " << r;
    EXPECT_EQ(a.latency.server_compute, e.latency.server_compute)
        << label << " round " << r;
    EXPECT_EQ(a.latency.uplink, e.latency.uplink) << label << " round " << r;
    EXPECT_EQ(a.latency.downlink, e.latency.downlink)
        << label << " round " << r;
    EXPECT_EQ(a.latency.relay, e.latency.relay) << label << " round " << r;
    EXPECT_EQ(a.latency.aggregation, e.latency.aggregation)
        << label << " round " << r;
  }
  ASSERT_EQ(actual.state.size(), reference.state.size()) << label;
  for (std::size_t e = 0; e < actual.state.size(); ++e) {
    EXPECT_TRUE(bitwise_equal(actual.state[e], reference.state[e]))
        << label << " state entry " << e;
  }
}

// ---- SFL -------------------------------------------------------------------

RunOutput run_sfl(std::size_t rounds, std::size_t depth) {
  const std::size_t clients = 5;
  auto network = test::make_tiny_network(clients);
  auto datasets = make_straggler_datasets(clients, 11);
  common::Rng model_rng(7);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  schemes::SplitFedTrainer trainer(network, std::move(datasets),
                                   std::move(model), test::kTinyCut, config);
  RunOutput out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  return out;
}

TEST(PipelinedRounds, SflBitwiseAcrossThreadAndDepthMatrix) {
  const auto reference = run_sfl(3, 1);
  test::prop::for_each_thread_count([&](std::size_t threads) {
    test::prop::for_each_pipeline_depth([&](std::size_t depth) {
      const auto run = run_sfl(3, depth);
      expect_same_run(run, reference,
                      ("sfl t=" + std::to_string(threads) +
                       " d=" + std::to_string(depth))
                          .c_str());
    });
  });
}

// ---- FL --------------------------------------------------------------------

RunOutput run_fl(std::size_t rounds, std::size_t depth) {
  const std::size_t clients = 4;
  auto network = test::make_tiny_network(clients);
  auto datasets = make_straggler_datasets(clients, 23);
  common::Rng model_rng(9);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  config.local_epochs = 2;  // multi-epoch batch plans
  schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                 std::move(model), config);
  RunOutput out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  return out;
}

TEST(PipelinedRounds, FlBitwiseAcrossThreadAndDepthMatrix) {
  const auto reference = run_fl(3, 1);
  test::prop::for_each_thread_count([&](std::size_t threads) {
    test::prop::for_each_pipeline_depth([&](std::size_t depth) {
      const auto run = run_fl(3, depth);
      expect_same_run(run, reference,
                      ("fl t=" + std::to_string(threads) +
                       " d=" + std::to_string(depth))
                          .c_str());
    });
  });
}

// ---- GSFL ------------------------------------------------------------------

RunOutput run_gsfl(std::size_t rounds, std::size_t depth,
                   double failure_rate) {
  const std::size_t clients = 6;
  auto network = test::make_tiny_network(clients);
  auto datasets = make_straggler_datasets(clients, 31);
  common::Rng model_rng(13);
  auto model = test::make_tiny_model(model_rng);
  core::GsflConfig config;
  config.num_groups = 3;
  config.cut_layer = test::kTinyCut;
  config.grouping = core::GroupingPolicy::kContiguous;
  config.bandwidth = core::BandwidthPolicy::kAdaptive;
  config.client_failure_rate = failure_rate;
  config.train.batch_size = 4;
  core::GsflTrainer trainer(network, std::move(datasets), std::move(model),
                            config);
  RunOutput out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  return out;
}

TEST(PipelinedRounds, GsflBitwiseAcrossThreadAndDepthMatrix) {
  const auto reference = run_gsfl(3, 1, 0.0);
  test::prop::for_each_thread_count([&](std::size_t threads) {
    test::prop::for_each_pipeline_depth([&](std::size_t depth) {
      const auto run = run_gsfl(3, depth, 0.0);
      expect_same_run(run, reference,
                      ("gsfl t=" + std::to_string(threads) +
                       " d=" + std::to_string(depth))
                          .c_str());
    });
  });
}

TEST(PipelinedRounds, GsflWithFailureInjectionStaysBitwise) {
  // Failure draws happen at submit time in round order — pre-drawn for every
  // in-flight round — so skipped clients and fully offline groups must land
  // identically at any depth.
  const auto reference = run_gsfl(4, 1, 0.35);
  test::prop::for_each_pipeline_depth([&](std::size_t depth) {
    const auto run = run_gsfl(4, depth, 0.35);
    expect_same_run(run, reference,
                    ("gsfl-fail d=" + std::to_string(depth)).c_str());
  });
}

// ---- default whole-round fallback ------------------------------------------

TEST(PipelinedRounds, FallbackSchemesPipelineViaWholeRoundTask) {
  // CentralizedTrainer has no pipelined decomposition: submit_round wraps
  // do_round in one lane task. Results must still match the barriered loop.
  const auto run = [&](std::size_t depth) {
    auto network = test::make_tiny_network(1);
    auto datasets = test::make_client_datasets(1, 12, 3);
    common::Rng model_rng(5);
    auto model = test::make_tiny_model(model_rng);
    schemes::TrainConfig config;
    config.batch_size = 4;
    schemes::CentralizedTrainer trainer(network, std::move(datasets),
                                        std::move(model), config);
    RunOutput out;
    out.results = schemes::run_rounds_pipelined(trainer, 3, depth);
    out.state = trainer.global_model().state();
    return out;
  };
  const auto reference = run(1);
  test::prop::for_each_pipeline_depth([&](std::size_t depth) {
    expect_same_run(run(depth), reference,
                    ("centralized d=" + std::to_string(depth)).c_str());
  });
}

// ---- run_experiment driver -------------------------------------------------

TEST(PipelinedRounds, RunExperimentRecordsMatchAcrossDepths) {
  const auto run = [&](std::size_t depth) {
    auto network = test::make_tiny_network(5);
    auto datasets = make_straggler_datasets(5, 41);
    common::Rng model_rng(17);
    auto model = test::make_tiny_model(model_rng);
    schemes::TrainConfig config;
    config.batch_size = 4;
    schemes::SplitFedTrainer trainer(network, std::move(datasets),
                                     std::move(model), test::kTinyCut,
                                     config);
    common::Rng data_rng(19);
    const auto test_set = test::make_separable_dataset(24, data_rng);
    schemes::ExperimentOptions options;
    options.rounds = 5;
    options.eval_every = 2;  // overlapped evals only on some rounds
    options.pipeline_depth = depth;
    return schemes::run_experiment(trainer, test_set, options);
  };
  const auto reference = run(1);
  test::prop::for_each_pipeline_depth([&](std::size_t depth) {
    const auto recorder = run(depth);
    ASSERT_EQ(recorder.rounds(), reference.rounds()) << "depth " << depth;
    for (std::size_t i = 0; i < recorder.records().size(); ++i) {
      const auto& a = recorder.records()[i];
      const auto& e = reference.records()[i];
      EXPECT_EQ(a.round, e.round) << "depth " << depth;
      EXPECT_EQ(a.sim_seconds, e.sim_seconds) << "depth " << depth;
      EXPECT_EQ(a.train_loss, e.train_loss) << "depth " << depth;
      EXPECT_EQ(a.eval_accuracy, e.eval_accuracy) << "depth " << depth;
    }
  });
}

// ---- ticket discipline -----------------------------------------------------

TEST(PipelinedRounds, RunRoundRefusesWhileRoundsInFlight) {
  auto network = test::make_tiny_network(2);
  auto datasets = test::make_client_datasets(2, 8, 29);
  common::Rng model_rng(31);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  schemes::SplitFedTrainer trainer(network, std::move(datasets),
                                   std::move(model), test::kTinyCut, config);
  auto ticket = trainer.submit_round();
  EXPECT_EQ(trainer.rounds_in_flight(), 1u);
  EXPECT_THROW((void)trainer.run_round(), std::exception);
  (void)trainer.collect_round(ticket);
  EXPECT_EQ(trainer.rounds_in_flight(), 0u);
  EXPECT_EQ(trainer.rounds_completed(), 1u);
  (void)trainer.run_round();  // fine again once drained
}

// ---- error paths -----------------------------------------------------------

// A scheme whose round body throws on one specific round: the pipelined
// driver must surface that error from the failed ticket, drain the window
// without deadlocking, and leave both the lane and the trainer reusable.
class FlakyTrainer final : public schemes::Trainer {
 public:
  FlakyTrainer(const net::WirelessNetwork& network,
               std::vector<data::Dataset> datasets, nn::Sequential model,
               schemes::TrainConfig config, std::size_t fail_at)
      : Trainer("Flaky", network, std::move(datasets), config),
        model_(std::move(model)),
        fail_at_(fail_at) {}

  [[nodiscard]] nn::Sequential global_model() const override { return model_; }

 protected:
  schemes::RoundResult do_round() override {
    const std::size_t round = attempts_.fetch_add(1);
    if (round == fail_at_) {
      throw std::runtime_error("flaky client died in round " +
                               std::to_string(round));
    }
    schemes::RoundResult result;
    result.train_loss = 1.0 / static_cast<double>(round + 1);
    return result;
  }

 private:
  nn::Sequential model_;
  std::size_t fail_at_;
  std::atomic<std::size_t> attempts_{0};
};

TEST(PipelinedRounds, ThrowingRoundFailsItsTicketWithoutPoisoningTheLane) {
  auto network = test::make_tiny_network(2);
  auto datasets = test::make_client_datasets(2, 8, 37);
  common::Rng model_rng(41);
  FlakyTrainer trainer(network, std::move(datasets),
                       test::make_tiny_model(model_rng),
                       schemes::TrainConfig{}, /*fail_at=*/1);

  // Round index 1 throws; with depth 2 the failure lands while another
  // round is in flight, so the drain path really runs.
  EXPECT_THROW((void)schemes::run_rounds_pipelined(trainer, 4, 2),
               std::runtime_error);
  EXPECT_EQ(trainer.rounds_in_flight(), 0u);

  // The trainer accepts new pipelined rounds after the failed graph drains
  // (the publish gate was cleared, so these do not inherit the old error).
  const auto after = schemes::run_rounds_pipelined(trainer, 3, 2);
  ASSERT_EQ(after.size(), 3u);
  for (const auto& result : after) EXPECT_GT(result.train_loss, 0.0);

  // The global lane is healthy for unrelated work too.
  auto f = common::global_lane().submit([] { return 11; });
  EXPECT_EQ(f.wait(), 11);
}

}  // namespace
