// Quantized cut-layer rounds: with ChannelConfig::quantizer active the
// schemes price smashed payloads at the quantized wire bytes and push the
// smashed activations/gradients through fake_quantize. Both are pure
// elementwise transforms, so quantized training must keep the same bitwise
// thread × pipeline-depth invariance the f32 path pins — at every bit
// width the harness sweeps — while the radio time actually shrinks.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "gsfl/schemes/splitfed.hpp"
#include "gsfl/schemes/trainer.hpp"
#include "gsfl/tensor/quantize.hpp"
#include "support/property.hpp"
#include "support/test_world.hpp"

namespace {

using namespace gsfl;
using test::prop::bitwise_equal;

net::WirelessNetwork make_quantized_network(std::size_t num_clients,
                                            tensor::QuantizerConfig quantizer) {
  net::NetworkConfig config;
  config.total_bandwidth_hz = 10e6;
  config.channel.quantizer = quantizer;
  std::vector<net::DeviceProfile> clients(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients[c].distance_m = 30.0 + 10.0 * static_cast<double>(c);
    clients[c].compute_flops = 1e9;
  }
  return net::WirelessNetwork(config, std::move(clients));
}

struct RunOutput {
  std::vector<schemes::RoundResult> results;
  nn::StateDict state;
};

RunOutput run_sfl(std::size_t rounds, std::size_t depth,
                  tensor::QuantizerConfig quantizer) {
  const std::size_t clients = 4;
  auto network = make_quantized_network(clients, quantizer);
  auto datasets = test::make_client_datasets(clients, 8, 17);
  common::Rng model_rng(7);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  schemes::SplitFedTrainer trainer(network, std::move(datasets),
                                   std::move(model), test::kTinyCut, config);
  RunOutput out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  return out;
}

void expect_same_run(const RunOutput& actual, const RunOutput& reference,
                     const std::string& label) {
  ASSERT_EQ(actual.results.size(), reference.results.size()) << label;
  for (std::size_t r = 0; r < actual.results.size(); ++r) {
    const auto& a = actual.results[r];
    const auto& e = reference.results[r];
    EXPECT_EQ(a.train_loss, e.train_loss) << label << " round " << r;
    EXPECT_EQ(a.latency.uplink, e.latency.uplink) << label << " round " << r;
    EXPECT_EQ(a.latency.downlink, e.latency.downlink)
        << label << " round " << r;
    EXPECT_EQ(a.latency.client_compute, e.latency.client_compute)
        << label << " round " << r;
    EXPECT_EQ(a.latency.server_compute, e.latency.server_compute)
        << label << " round " << r;
  }
  ASSERT_EQ(actual.state.size(), reference.state.size()) << label;
  for (std::size_t e = 0; e < actual.state.size(); ++e) {
    EXPECT_TRUE(bitwise_equal(actual.state[e], reference.state[e]))
        << label << " state entry " << e;
  }
}

TEST(QuantizedRounds, RadioTimeShrinksAndTrainingStaysSane) {
  const auto f32 = run_sfl(2, 1, tensor::QuantizerConfig{});
  const auto q8 = run_sfl(2, 1, {.bits = 8, .per_channel = false});
  const auto q2 = run_sfl(2, 1, {.bits = 2, .per_channel = false});
  for (std::size_t r = 0; r < 2; ++r) {
    // 8-bit payloads are ~4× smaller than f32, 2-bit ~16× — strictly less
    // radio time each round, and fewer bits always costs less than more.
    EXPECT_LT(q8.results[r].latency.uplink, f32.results[r].latency.uplink);
    EXPECT_LT(q8.results[r].latency.downlink,
              f32.results[r].latency.downlink);
    EXPECT_LT(q2.results[r].latency.uplink, q8.results[r].latency.uplink);
    // Quantization must not blow up the optimization.
    EXPECT_TRUE(std::isfinite(q8.results[r].train_loss));
    EXPECT_GT(q8.results[r].train_loss, 0.0);
  }
  // Compute time is priced from FLOPs, untouched by the quantizer.
  EXPECT_EQ(q8.results[0].latency.client_compute,
            f32.results[0].latency.client_compute);
}

TEST(QuantizedRounds, EightBitLossTracksF32Closely) {
  const auto f32 = run_sfl(3, 1, tensor::QuantizerConfig{});
  const auto q8 = run_sfl(3, 1, {.bits = 8, .per_channel = false});
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(q8.results[r].train_loss, f32.results[r].train_loss, 0.05)
        << "round " << r;
  }
}

TEST(QuantizedRounds, BitwiseAcrossThreadAndDepthMatrix) {
  test::prop::for_each_quantizer([&](const tensor::QuantizerConfig& config) {
    const auto reference = run_sfl(2, 1, config);
    test::prop::for_each_thread_count([&](std::size_t threads) {
      test::prop::for_each_pipeline_depth([&](std::size_t depth) {
        const auto run = run_sfl(2, depth, config);
        expect_same_run(run, reference,
                        "bits=" + std::to_string(config.bits) +
                            (config.per_channel ? "/ch" : "") +
                            " t=" + std::to_string(threads) +
                            " d=" + std::to_string(depth));
      });
    });
  });
}

}  // namespace
