// Robust federation: deterministic fault injection and deadline/quorum
// round completion. Two properties anchor this suite. First, fault-injected
// rounds stay inside the determinism contract — bitwise identical results
// across the thread × pipeline-depth × pack-strategy matrix, because every
// fault is scripted by a round-keyed plan drawn at submission. Second, the
// quorum/deadline close is an exact, index-ordered renormalization: who is
// excluded (and why) is recorded per client, and the surviving FedAvg fold
// is invariant to scheduling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/robustness.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "gsfl/schemes/trainer.hpp"
#include "support/property.hpp"
#include "support/test_world.hpp"

namespace {

using namespace gsfl;
using test::prop::bitwise_equal;

std::vector<data::Dataset> make_straggler_datasets(std::size_t num_clients,
                                                   std::uint64_t seed) {
  common::Rng root(seed);
  std::vector<data::Dataset> out;
  out.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    auto rng = root.fork(100 + c);
    const std::size_t samples = c + 1 == num_clients ? 24 : 4 + 2 * c;
    out.push_back(test::make_separable_dataset(samples, rng));
  }
  return out;
}

sim::FaultConfig lively_faults() {
  sim::FaultConfig faults;
  faults.crash_before_rate = 0.15;
  faults.crash_after_rate = 0.1;
  faults.downlink_loss_rate = 0.2;
  faults.uplink_loss_rate = 0.2;
  faults.straggler_rate = 0.3;
  faults.seed = 0xBEEF;
  return faults;
}

struct RunOutput {
  std::vector<schemes::RoundResult> results;
  nn::StateDict state;
};

void expect_same_run(const RunOutput& actual, const RunOutput& reference,
                     const std::string& label) {
  ASSERT_EQ(actual.results.size(), reference.results.size()) << label;
  for (std::size_t r = 0; r < actual.results.size(); ++r) {
    const auto& a = actual.results[r];
    const auto& e = reference.results[r];
    EXPECT_EQ(a.train_loss, e.train_loss) << label << " round " << r;
    EXPECT_EQ(a.latency.total(), e.latency.total()) << label << " round " << r;
    ASSERT_EQ(a.participation.size(), e.participation.size())
        << label << " round " << r;
    for (std::size_t c = 0; c < a.participation.size(); ++c) {
      EXPECT_EQ(a.participation[c].client, e.participation[c].client)
          << label << " round " << r << " client " << c;
      EXPECT_EQ(a.participation[c].fault, e.participation[c].fault)
          << label << " round " << r << " client " << c;
      EXPECT_EQ(a.participation[c].report_seconds,
                e.participation[c].report_seconds)
          << label << " round " << r << " client " << c;
    }
  }
  ASSERT_EQ(actual.state.size(), reference.state.size()) << label;
  for (std::size_t e = 0; e < actual.state.size(); ++e) {
    EXPECT_TRUE(bitwise_equal(actual.state[e], reference.state[e]))
        << label << " state entry " << e;
  }
}

// ---- bitwise matrix, per scheme --------------------------------------------

RunOutput run_fl_faulty(std::size_t rounds, std::size_t depth) {
  const std::size_t clients = 6;
  auto network = test::make_tiny_network(clients);
  auto datasets = make_straggler_datasets(clients, 23);
  common::Rng model_rng(9);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  config.faults = lively_faults();
  config.round_policy.quorum_fraction = 0.5;
  schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                 std::move(model), config);
  RunOutput out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  return out;
}

TEST(FaultInjection, FlFaultyRoundsBitwiseAcrossThreadAndDepthMatrix) {
  const auto reference = run_fl_faulty(4, 1);
  test::prop::for_each_thread_count([&](std::size_t threads) {
    test::prop::for_each_pipeline_depth([&](std::size_t depth) {
      expect_same_run(run_fl_faulty(4, depth), reference,
                      "fl t=" + std::to_string(threads) +
                          " d=" + std::to_string(depth));
    });
  });
}

RunOutput run_sfl_faulty(std::size_t rounds, std::size_t depth) {
  const std::size_t clients = 5;
  auto network = test::make_tiny_network(clients);
  auto datasets = make_straggler_datasets(clients, 11);
  common::Rng model_rng(7);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  config.faults = lively_faults();
  config.round_policy.deadline_seconds = 60.0;
  schemes::SplitFedTrainer trainer(network, std::move(datasets),
                                   std::move(model), test::kTinyCut, config);
  RunOutput out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  return out;
}

TEST(FaultInjection, SflFaultyRoundsBitwiseAcrossMatrixAndPackStrategy) {
  const auto reference = run_sfl_faulty(4, 1);
  test::prop::for_each_pack_strategy([&](tensor::PackStrategy strategy) {
    test::prop::for_each_pipeline_depth([&](std::size_t depth) {
      expect_same_run(
          run_sfl_faulty(4, depth), reference,
          std::string("sfl pack=") + test::prop::pack_strategy_name(strategy) +
              " d=" + std::to_string(depth));
    });
  });
  test::prop::for_each_thread_count([&](std::size_t threads) {
    expect_same_run(run_sfl_faulty(4, 2), reference,
                    "sfl t=" + std::to_string(threads));
  });
}

RunOutput run_gsfl_faulty(std::size_t rounds, std::size_t depth) {
  const std::size_t clients = 6;
  auto network = test::make_tiny_network(clients);
  auto datasets = make_straggler_datasets(clients, 31);
  common::Rng model_rng(13);
  auto model = test::make_tiny_model(model_rng);
  core::GsflConfig config;
  config.num_groups = 3;
  config.cut_layer = test::kTinyCut;
  config.grouping = core::GroupingPolicy::kContiguous;
  config.bandwidth = core::BandwidthPolicy::kAdaptive;
  config.client_failure_rate = 0.1;  // legacy injection composes with faults
  config.train.batch_size = 4;
  config.train.faults = lively_faults();
  config.train.round_policy.quorum_fraction = 0.67;
  core::GsflTrainer trainer(network, std::move(datasets), std::move(model),
                            config);
  RunOutput out;
  out.results = schemes::run_rounds_pipelined(trainer, rounds, depth);
  out.state = trainer.global_model().state();
  return out;
}

TEST(FaultInjection, GsflFaultyRoundsBitwiseAcrossThreadAndDepthMatrix) {
  const auto reference = run_gsfl_faulty(4, 1);
  test::prop::for_each_thread_count([&](std::size_t threads) {
    test::prop::for_each_pipeline_depth([&](std::size_t depth) {
      expect_same_run(run_gsfl_faulty(4, depth), reference,
                      "gsfl t=" + std::to_string(threads) +
                          " d=" + std::to_string(depth));
    });
  });
}

// ---- participation records -------------------------------------------------

TEST(FaultInjection, FaultFreePathsLeaveParticipationEmpty) {
  auto network = test::make_tiny_network(3);
  auto datasets = test::make_client_datasets(3, 8, 5);
  common::Rng model_rng(3);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                 std::move(model), config);
  const auto result = trainer.run_round();
  EXPECT_TRUE(result.participation.empty());
}

TEST(FaultInjection, ParticipationRecordsExplainEveryClient) {
  const std::size_t clients = 8;
  auto network = test::make_tiny_network(clients);
  auto datasets = test::make_client_datasets(clients, 8, 17);
  common::Rng model_rng(21);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  config.faults = lively_faults();
  schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                 std::move(model), config);

  bool saw_fault = false;
  bool saw_participant = false;
  for (std::size_t r = 0; r < 6; ++r) {
    const auto result = trainer.run_round();
    ASSERT_EQ(result.participation.size(), clients);
    for (std::size_t c = 0; c < clients; ++c) {
      const auto& record = result.participation[c];
      EXPECT_EQ(record.client, c);
      if (record.fault == sim::FaultKind::kNone) {
        saw_participant = true;
        EXPECT_GT(record.report_seconds, 0.0)
            << "participants must have reached the AP";
      } else {
        saw_fault = true;
      }
      if (record.fault == sim::FaultKind::kCrashBeforeCompute ||
          record.fault == sim::FaultKind::kDownlinkFailed ||
          record.fault == sim::FaultKind::kCrashAfterCompute ||
          record.fault == sim::FaultKind::kUplinkFailed) {
        EXPECT_EQ(record.report_seconds, 0.0)
            << "a client that never reported has no report time";
      }
    }
  }
  EXPECT_TRUE(saw_fault) << "these rates should fault someone in 6 rounds";
  EXPECT_TRUE(saw_participant);
}

TEST(FaultInjection, GsflGroupChainBreaksCascadeToMembers) {
  const std::size_t clients = 6;
  auto network = test::make_tiny_network(clients);
  auto datasets = test::make_client_datasets(clients, 8, 37);
  common::Rng model_rng(41);
  auto model = test::make_tiny_model(model_rng);
  core::GsflConfig config;
  config.num_groups = 2;  // groups of 3: plenty of cascade surface
  config.cut_layer = test::kTinyCut;
  config.grouping = core::GroupingPolicy::kContiguous;
  config.train.batch_size = 4;
  config.train.faults.crash_after_rate = 0.5;
  config.train.faults.seed = 0xCAFE;
  core::GsflTrainer trainer(network, std::move(datasets), std::move(model),
                            config);

  bool saw_cascade = false;
  for (std::size_t r = 0; r < 8 && !saw_cascade; ++r) {
    const auto result = trainer.run_round();
    ASSERT_EQ(result.participation.size(), clients);
    for (const auto& record : result.participation) {
      saw_cascade |= record.fault == sim::FaultKind::kCascade;
    }
  }
  EXPECT_TRUE(saw_cascade)
      << "a crash-after in a 3-member group must cascade to its peers";
}

// ---- retry pricing ---------------------------------------------------------

TEST(FaultInjection, RetriesCostAirtimePlusBackoff) {
  auto network = test::make_tiny_network(2);
  const double bytes = 10'000.0;
  const double share = 0.5;
  const double single = network.uplink_seconds(0, bytes, share);
  EXPECT_EQ(network.uplink_seconds(0, bytes, share, 1), single);
  EXPECT_EQ(network.uplink_seconds(0, bytes, share, 3), 3.0 * single);
  EXPECT_EQ(network.retry_backoff_seconds(3), 0.0);  // default backoff 0

  net::NetworkConfig config;
  config.total_bandwidth_hz = 10e6;
  config.channel.retry.backoff_seconds = 2.0;
  std::vector<net::DeviceProfile> devices(1);
  devices[0].distance_m = 30.0;
  devices[0].compute_flops = 1e9;
  net::WirelessNetwork backoff_net(config, std::move(devices));
  // Attempts 3 ⇒ waits of 1·b and 2·b between the three transmissions.
  EXPECT_EQ(backoff_net.retry_backoff_seconds(3), 6.0);
  const double base = backoff_net.downlink_seconds(0, bytes, 1.0);
  EXPECT_EQ(backoff_net.downlink_seconds(0, bytes, 1.0, 3), 3.0 * base + 6.0);
}

// ---- quorum / deadline close -----------------------------------------------

TEST(Quorum, DefaultPolicyIsTheFullBarrier) {
  const schemes::RoundPolicy policy;
  EXPECT_FALSE(policy.active());
  const std::vector<char> reported = {1, 0, 1, 1};
  const std::vector<double> times = {3.0, 0.0, 7.0, 5.0};
  const auto close = schemes::close_round(policy, reported, times);
  EXPECT_EQ(close.close_seconds, 7.0);
  EXPECT_EQ(close.included, (std::vector<char>{1, 0, 1, 1}));
}

TEST(Quorum, ClosesAtTheKthReportAndExcludesLater) {
  schemes::RoundPolicy policy;
  policy.quorum_fraction = 0.5;  // K = 2 of 4
  const std::vector<char> reported = {1, 1, 1, 1};
  const std::vector<double> times = {9.0, 2.0, 4.0, 6.0};
  const auto close = schemes::close_round(policy, reported, times);
  EXPECT_EQ(close.close_seconds, 4.0);
  EXPECT_EQ(close.included, (std::vector<char>{0, 1, 1, 0}));
}

TEST(Quorum, TiesAtTheCloseAreIncluded) {
  schemes::RoundPolicy policy;
  policy.quorum_fraction = 0.25;  // K = 1 of 4
  const std::vector<char> reported = {1, 1, 1, 1};
  const std::vector<double> times = {5.0, 5.0, 5.0, 8.0};
  const auto close = schemes::close_round(policy, reported, times);
  EXPECT_EQ(close.close_seconds, 5.0);
  EXPECT_EQ(close.included, (std::vector<char>{1, 1, 1, 0}));
}

TEST(Quorum, DeadlineClosesARoundThatNeverReachesQuorum) {
  schemes::RoundPolicy policy;
  policy.quorum_fraction = 1.0;
  policy.deadline_seconds = 4.5;
  const std::vector<char> reported = {1, 1, 1};
  const std::vector<double> times = {2.0, 4.0, 9.0};
  const auto close = schemes::close_round(policy, reported, times);
  EXPECT_EQ(close.close_seconds, 4.5);
  EXPECT_EQ(close.included, (std::vector<char>{1, 1, 0}));
}

TEST(Quorum, UnreachableQuorumWithoutDeadlineTakesEveryReporter) {
  schemes::RoundPolicy policy;
  policy.quorum_fraction = 0.9;  // K = 4 of 4, but only 2 report
  const std::vector<char> reported = {1, 0, 0, 1};
  const std::vector<double> times = {2.0, 0.0, 0.0, 6.0};
  const auto close = schemes::close_round(policy, reported, times);
  EXPECT_EQ(close.close_seconds, 6.0);
  EXPECT_EQ(close.included, (std::vector<char>{1, 0, 0, 1}));
}

TEST(Quorum, NobodyReportingClosesAtTheDeadline) {
  schemes::RoundPolicy policy;
  policy.deadline_seconds = 3.0;
  const std::vector<char> reported = {0, 0};
  const std::vector<double> times = {0.0, 0.0};
  const auto close = schemes::close_round(policy, reported, times);
  EXPECT_EQ(close.close_seconds, 3.0);
  EXPECT_EQ(close.included, (std::vector<char>{0, 0}));
}

TEST(Quorum, ValidatesPolicyBounds) {
  const std::vector<char> reported = {1};
  const std::vector<double> times = {1.0};
  schemes::RoundPolicy bad;
  bad.quorum_fraction = 0.0;
  EXPECT_THROW((void)schemes::close_round(bad, reported, times),
               std::exception);
  bad = {};
  bad.quorum_fraction = 1.5;
  EXPECT_THROW((void)schemes::close_round(bad, reported, times),
               std::exception);
  bad = {};
  bad.deadline_seconds = -1.0;
  EXPECT_THROW((void)schemes::close_round(bad, reported, times),
               std::exception);
}

// ---- quorum semantics inside a scheme --------------------------------------

TEST(Quorum, LateReportersAreExcludedAndMarked) {
  // The last client's dataset is 3× everyone else's: under a 0.75 quorum it
  // reports after the close and must be excluded with kLate, every round.
  const std::size_t clients = 4;
  auto network = test::make_tiny_network(clients);
  auto datasets = make_straggler_datasets(clients, 47);
  common::Rng model_rng(51);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  config.round_policy.quorum_fraction = 0.75;  // K = 3 of 4
  schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                 std::move(model), config);
  const auto result = trainer.run_round();
  ASSERT_EQ(result.participation.size(), clients);
  EXPECT_EQ(result.participation.back().fault, sim::FaultKind::kLate);
  EXPECT_GT(result.participation.back().report_seconds, 0.0);
  std::size_t included = 0;
  for (const auto& record : result.participation) {
    included += record.fault == sim::FaultKind::kNone ? 1 : 0;
  }
  EXPECT_EQ(included, 3u);
}

TEST(Quorum, QuorumReweightingIsThreadAndDepthInvariant) {
  const auto run = [](std::size_t depth) {
    const std::size_t clients = 5;
    auto network = test::make_tiny_network(clients);
    auto datasets = make_straggler_datasets(clients, 53);
    common::Rng model_rng(57);
    auto model = test::make_tiny_model(model_rng);
    schemes::TrainConfig config;
    config.batch_size = 4;
    config.round_policy.quorum_fraction = 0.6;
    schemes::SplitFedTrainer trainer(network, std::move(datasets),
                                     std::move(model), test::kTinyCut, config);
    RunOutput out;
    out.results = schemes::run_rounds_pipelined(trainer, 3, depth);
    out.state = trainer.global_model().state();
    return out;
  };
  const auto reference = run(1);
  test::prop::for_each_thread_count([&](std::size_t threads) {
    test::prop::for_each_pipeline_depth([&](std::size_t depth) {
      expect_same_run(run(depth), reference,
                      "quorum t=" + std::to_string(threads) +
                          " d=" + std::to_string(depth));
    });
  });
}

TEST(Quorum, DeadlineWithNoSurvivorsChargesTheWaitAndKeepsTheModel) {
  const std::size_t clients = 3;
  auto network = test::make_tiny_network(clients);
  auto datasets = test::make_client_datasets(clients, 8, 61);
  common::Rng model_rng(63);
  auto model = test::make_tiny_model(model_rng);
  const auto before = model.state();
  schemes::TrainConfig config;
  config.batch_size = 4;
  config.round_policy.deadline_seconds = 1e-9;  // nobody can make this
  schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                 std::move(model), config);
  const auto result = trainer.run_round();
  for (const auto& record : result.participation) {
    EXPECT_EQ(record.fault, sim::FaultKind::kLate);
  }
  // The AP idled out the full deadline; no survivor chain is longer.
  EXPECT_EQ(result.latency.total(), 1e-9);
  EXPECT_EQ(result.train_loss, 0.0);
  const auto after = trainer.global_model().state();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t e = 0; e < after.size(); ++e) {
    EXPECT_TRUE(bitwise_equal(after[e], before[e])) << "entry " << e;
  }
}

}  // namespace
