#include <gtest/gtest.h>

#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/schemes/centralized.hpp"
#include "gsfl/schemes/split_learning.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::schemes::CentralizedTrainer;
using gsfl::schemes::SplitLearningTrainer;
using gsfl::schemes::TrainConfig;

TEST(SplitLearning, SingleClientEqualsCentralizedExactly) {
  // Splitting a model does not change the math: SL with one client performs
  // the same SGD steps as CL on that client's data.
  const auto network = gsfl::test::make_tiny_network(1);
  const auto data = gsfl::test::make_client_datasets(1, 16, 21);
  Rng rng(21);
  const auto init = gsfl::test::make_tiny_model(rng);
  TrainConfig config;

  SplitLearningTrainer sl(network, data, init, gsfl::test::kTinyCut, config);
  CentralizedTrainer cl(network, data, init, config);

  for (int round = 0; round < 4; ++round) {
    (void)sl.run_round();
    (void)cl.run_round();
    EXPECT_TRUE(gsfl::test::states_equal(sl.global_model(),
                                         cl.global_model()))
        << "diverged at round " << round;
  }
}

TEST(SplitLearning, MultiClientEqualsCentralizedOnConcatenatedStream) {
  // Vanilla SL is sequential SGD across clients — per round it visits every
  // client's local epoch in order, which matches CL only in expectation,
  // not exactly (different batch interleave). Verify they reach similar
  // accuracy rather than exact equality.
  const auto network = gsfl::test::make_tiny_network(3);
  const auto data = gsfl::test::make_client_datasets(3, 16, 22);
  Rng rng(22);
  Rng test_rng(23);
  const auto test_set = gsfl::test::make_separable_dataset(48, test_rng);
  const auto init = gsfl::test::make_tiny_model(rng);
  TrainConfig config;
  config.learning_rate = 0.15;

  SplitLearningTrainer sl(network, data, init, gsfl::test::kTinyCut, config);
  for (int i = 0; i < 25; ++i) (void)sl.run_round();
  auto model = sl.global_model();
  EXPECT_GT(gsfl::metrics::evaluate(model, test_set).accuracy, 0.85);
}

TEST(SplitLearning, LatencyShapeSequentialAcrossClients) {
  const auto network = gsfl::test::make_tiny_network(4);
  Rng rng(24);
  SplitLearningTrainer trainer(network,
                               gsfl::test::make_client_datasets(4, 8, 24),
                               gsfl::test::make_tiny_model(rng),
                               gsfl::test::kTinyCut, TrainConfig{});
  const auto first = trainer.run_round().latency;
  EXPECT_GT(first.client_compute, 0.0);
  EXPECT_GT(first.server_compute, 0.0);  // split training touches the server
  EXPECT_GT(first.uplink, 0.0);          // smashed data
  EXPECT_GT(first.downlink, 0.0);        // gradients + initial distribution
  EXPECT_GT(first.relay, 0.0);           // model hand-offs between clients
  EXPECT_DOUBLE_EQ(first.aggregation, 0.0);  // vanilla SL never aggregates

  // Round 2 has no initial distribution but adds a wrap-around relay.
  const auto second = trainer.run_round().latency;
  EXPECT_GT(second.relay, first.relay);
}

TEST(SplitLearning, RoundLatencyScalesWithClientCount) {
  Rng rng(25);
  const auto init = gsfl::test::make_tiny_model(rng);
  const auto network2 = gsfl::test::make_tiny_network(2);
  const auto network6 = gsfl::test::make_tiny_network(6);

  SplitLearningTrainer two(network2, gsfl::test::make_client_datasets(2, 8, 25),
                           init, gsfl::test::kTinyCut, TrainConfig{});
  SplitLearningTrainer six(network6, gsfl::test::make_client_datasets(6, 8, 25),
                           init, gsfl::test::kTinyCut, TrainConfig{});
  const double t2 = two.run_round().latency.total();
  const double t6 = six.run_round().latency.total();
  // Sequential training: ~3× the clients ⇒ roughly 3× the round time.
  EXPECT_GT(t6, 2.0 * t2);
}

TEST(SplitLearning, ServerSideMustBeTrainable) {
  const auto network = gsfl::test::make_tiny_network(1);
  const auto data = gsfl::test::make_client_datasets(1, 8, 26);
  Rng rng(26);
  const auto init = gsfl::test::make_tiny_model(rng);
  // Cut at the full depth leaves an empty (untrainable) server side.
  EXPECT_THROW(SplitLearningTrainer(network, data, init, init.size(),
                                    TrainConfig{}),
               std::invalid_argument);
}

TEST(SplitLearning, CutLayerZeroStillTrains) {
  // Degenerate split: everything on the server (privacy-free but legal).
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 27);
  Rng rng(27);
  SplitLearningTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                               0, TrainConfig{});
  const double first = trainer.run_round().train_loss;
  double last = first;
  for (int i = 0; i < 6; ++i) last = trainer.run_round().train_loss;
  EXPECT_LT(last, first);
}

}  // namespace
