#include <gtest/gtest.h>

#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/schemes/split_learning.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::schemes::SplitFedTrainer;
using gsfl::schemes::TrainConfig;

TEST(SplitFed, LearnsSeparableTask) {
  const auto network = gsfl::test::make_tiny_network(4);
  Rng rng(31);
  Rng test_rng(32);
  const auto test_set = gsfl::test::make_separable_dataset(48, test_rng);
  TrainConfig config;
  config.learning_rate = 0.15;
  SplitFedTrainer trainer(network, gsfl::test::make_client_datasets(4, 16, 31),
                          gsfl::test::make_tiny_model(rng),
                          gsfl::test::kTinyCut, config);
  for (int i = 0; i < 25; ++i) (void)trainer.run_round();
  auto model = trainer.global_model();
  EXPECT_GT(gsfl::metrics::evaluate(model, test_set).accuracy, 0.85);
}

TEST(SplitFed, ServerStorageScalesWithClients) {
  Rng rng(33);
  const auto init = gsfl::test::make_tiny_model(rng);

  const auto network2 = gsfl::test::make_tiny_network(2);
  const auto network6 = gsfl::test::make_tiny_network(6);
  SplitFedTrainer two(network2, gsfl::test::make_client_datasets(2, 8, 33),
                      init, gsfl::test::kTinyCut, TrainConfig{});
  SplitFedTrainer six(network6, gsfl::test::make_client_datasets(6, 8, 33),
                      init, gsfl::test::kTinyCut, TrainConfig{});
  EXPECT_EQ(six.server_storage_bytes(), 3 * two.server_storage_bytes());
  EXPECT_GT(two.server_storage_bytes(), 0u);
}

TEST(SplitFed, LatencyComponentsPresent) {
  const auto network = gsfl::test::make_tiny_network(3);
  Rng rng(34);
  SplitFedTrainer trainer(network, gsfl::test::make_client_datasets(3, 8, 34),
                          gsfl::test::make_tiny_model(rng),
                          gsfl::test::kTinyCut, TrainConfig{});
  const auto latency = trainer.run_round().latency;
  EXPECT_GT(latency.downlink, 0.0);
  EXPECT_GT(latency.uplink, 0.0);
  EXPECT_GT(latency.client_compute, 0.0);
  EXPECT_GT(latency.server_compute, 0.0);
  EXPECT_GT(latency.aggregation, 0.0);
  EXPECT_DOUBLE_EQ(latency.relay, 0.0);  // no hand-offs: fully parallel
}

TEST(SplitFed, ParallelRoundFasterThanSequentialSl) {
  // SFL's round span is the slowest client chain, not the sum over clients
  // — it must beat vanilla SL's fully sequential round on the same world,
  // even though each SFL client only gets 1/N of the band.
  const auto network = gsfl::test::make_tiny_network(4);
  const auto data = gsfl::test::make_client_datasets(4, 8, 35);
  Rng rng(35);
  const auto init = gsfl::test::make_tiny_model(rng);
  SplitFedTrainer sfl(network, data, init, gsfl::test::kTinyCut,
                      TrainConfig{});
  gsfl::schemes::SplitLearningTrainer sl(network, data, init,
                                         gsfl::test::kTinyCut, TrainConfig{});

  const double t_sfl = sfl.run_round().latency.total();
  const double t_sl = sl.run_round().latency.total();
  EXPECT_LT(t_sfl, t_sl);
}

TEST(SplitFed, GlobalModelReflectsAggregation) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(36);
  SplitFedTrainer trainer(network, gsfl::test::make_client_datasets(2, 8, 36),
                          gsfl::test::make_tiny_model(rng),
                          gsfl::test::kTinyCut, TrainConfig{});
  auto before = trainer.global_model();
  (void)trainer.run_round();
  auto after = trainer.global_model();
  EXPECT_FALSE(gsfl::test::states_equal(before, after));
}

TEST(SplitFed, RequiresTrainableServerSide) {
  const auto network = gsfl::test::make_tiny_network(1);
  const auto data = gsfl::test::make_client_datasets(1, 8, 37);
  Rng rng(37);
  const auto init = gsfl::test::make_tiny_model(rng);
  EXPECT_THROW(
      SplitFedTrainer(network, data, init, init.size(), TrainConfig{}),
      std::invalid_argument);
}

}  // namespace
