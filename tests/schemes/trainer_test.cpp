#include <gtest/gtest.h>

#include "gsfl/schemes/centralized.hpp"
#include "gsfl/schemes/trainer.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::schemes::CentralizedTrainer;
using gsfl::schemes::ExperimentOptions;
using gsfl::schemes::run_experiment;
using gsfl::schemes::TrainConfig;

TEST(Trainer, ConstructionValidation) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(1);
  TrainConfig config;

  // No clients.
  EXPECT_THROW(CentralizedTrainer(network, {}, gsfl::test::make_tiny_model(rng),
                                  config),
               std::invalid_argument);

  // More datasets than devices.
  auto too_many = gsfl::test::make_client_datasets(3, 8, 1);
  EXPECT_THROW(CentralizedTrainer(network, too_many,
                                  gsfl::test::make_tiny_model(rng), config),
               std::invalid_argument);

  // Bad hyperparameters.
  auto data = gsfl::test::make_client_datasets(2, 8, 1);
  TrainConfig bad = config;
  bad.learning_rate = 0.0;
  EXPECT_THROW(
      CentralizedTrainer(network, data, gsfl::test::make_tiny_model(rng), bad),
      std::invalid_argument);
  bad = config;
  bad.batch_size = 0;
  EXPECT_THROW(
      CentralizedTrainer(network, data, gsfl::test::make_tiny_model(rng), bad),
      std::invalid_argument);
}

TEST(Trainer, RoundCounterAdvances) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(2);
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(2, 8, 2),
                             gsfl::test::make_tiny_model(rng), TrainConfig{});
  EXPECT_EQ(trainer.rounds_completed(), 0u);
  (void)trainer.run_round();
  (void)trainer.run_round();
  EXPECT_EQ(trainer.rounds_completed(), 2u);
}

TEST(RunExperiment, RecordsRequestedRounds) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(3);
  Rng test_rng(99);
  const auto test_set = gsfl::test::make_separable_dataset(16, test_rng);
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(2, 8, 3),
                             gsfl::test::make_tiny_model(rng), TrainConfig{});

  ExperimentOptions options;
  options.rounds = 5;
  const auto recorder = run_experiment(trainer, test_set, options);
  EXPECT_EQ(recorder.rounds(), 5u);
  EXPECT_EQ(recorder.records().front().round, 1u);
  EXPECT_EQ(recorder.records().back().round, 5u);
  // Simulated time strictly increases.
  double prev = 0.0;
  for (const auto& r : recorder.records()) {
    EXPECT_GT(r.sim_seconds, prev);
    prev = r.sim_seconds;
  }
}

TEST(RunExperiment, EvalEverySkipsIntermediateRounds) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(4);
  Rng test_rng(98);
  const auto test_set = gsfl::test::make_separable_dataset(16, test_rng);
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(2, 8, 4),
                             gsfl::test::make_tiny_model(rng), TrainConfig{});

  ExperimentOptions options;
  options.rounds = 7;
  options.eval_every = 3;
  const auto recorder = run_experiment(trainer, test_set, options);
  // Evaluated at rounds 3, 6 and the final round 7.
  ASSERT_EQ(recorder.rounds(), 3u);
  EXPECT_EQ(recorder.records()[0].round, 3u);
  EXPECT_EQ(recorder.records()[1].round, 6u);
  EXPECT_EQ(recorder.records()[2].round, 7u);
}

TEST(RunExperiment, StopsEarlyAtTargetAccuracy) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(5);
  Rng test_rng(97);
  const auto test_set = gsfl::test::make_separable_dataset(32, test_rng);
  TrainConfig config;
  config.learning_rate = 0.2;
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(2, 32, 5),
                             gsfl::test::make_tiny_model(rng), config);

  ExperimentOptions options;
  options.rounds = 500;
  options.stop_at_accuracy = 0.9;  // separable task: reached quickly
  const auto recorder = run_experiment(trainer, test_set, options);
  EXPECT_LT(recorder.rounds(), 500u);
  EXPECT_GE(recorder.final_accuracy(), 0.9);
}

TEST(RunExperiment, StopsAfterSimulatedSecondsBudget) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(6);
  Rng test_rng(96);
  const auto test_set = gsfl::test::make_separable_dataset(16, test_rng);
  CentralizedTrainer probe(network, gsfl::test::make_client_datasets(2, 8, 6),
                           gsfl::test::make_tiny_model(rng), TrainConfig{});
  const double one_round_seconds = probe.run_round().latency.total();

  Rng rng2(6);
  CentralizedTrainer trainer(network,
                             gsfl::test::make_client_datasets(2, 8, 6),
                             gsfl::test::make_tiny_model(rng2), TrainConfig{});
  ExperimentOptions options;
  options.rounds = 1000;
  // Budget below the cost of the first round (which includes the one-off
  // raw-data upload): the driver must stop right after round 1.
  options.stop_after_seconds = one_round_seconds * 0.5;
  const auto recorder = run_experiment(trainer, test_set, options);
  EXPECT_EQ(recorder.rounds(), 1u);
}

}  // namespace
