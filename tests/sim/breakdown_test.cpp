#include <gtest/gtest.h>

#include "gsfl/sim/breakdown.hpp"

namespace {

using gsfl::sim::critical_branch;
using gsfl::sim::LatencyBreakdown;
using gsfl::sim::span_parallel;
using gsfl::sim::span_sequential;

LatencyBreakdown sample_breakdown() {
  LatencyBreakdown b;
  b.client_compute = 1.0;
  b.server_compute = 2.0;
  b.uplink = 3.0;
  b.downlink = 4.0;
  b.relay = 5.0;
  b.aggregation = 6.0;
  return b;
}

TEST(Breakdown, TotalSumsAllComponents) {
  EXPECT_DOUBLE_EQ(sample_breakdown().total(), 21.0);
  EXPECT_DOUBLE_EQ(LatencyBreakdown{}.total(), 0.0);
}

TEST(Breakdown, PlusAccumulatesComponentWise) {
  auto a = sample_breakdown();
  a += sample_breakdown();
  EXPECT_DOUBLE_EQ(a.client_compute, 2.0);
  EXPECT_DOUBLE_EQ(a.aggregation, 12.0);
  EXPECT_DOUBLE_EQ(a.total(), 42.0);

  const auto b = sample_breakdown() + sample_breakdown();
  EXPECT_DOUBLE_EQ(b.total(), 42.0);
}

TEST(Breakdown, ScaledMultipliesEverything) {
  const auto half = sample_breakdown().scaled(0.5);
  EXPECT_DOUBLE_EQ(half.uplink, 1.5);
  EXPECT_DOUBLE_EQ(half.total(), 10.5);
}

TEST(Breakdown, ToStringMentionsComponents) {
  const auto text = sample_breakdown().to_string();
  EXPECT_NE(text.find("total=21"), std::string::npos);
  EXPECT_NE(text.find("relay=5"), std::string::npos);
}

TEST(Spans, SequentialIsSum) {
  const double spans[] = {1.0, 2.5, 0.5};
  EXPECT_DOUBLE_EQ(span_sequential(spans), 4.0);
  EXPECT_DOUBLE_EQ(span_sequential({}), 0.0);
}

TEST(Spans, ParallelIsMax) {
  const double spans[] = {1.0, 7.0, 3.0};
  EXPECT_DOUBLE_EQ(span_parallel(spans), 7.0);
  EXPECT_DOUBLE_EQ(span_parallel({}), 0.0);
}

TEST(Spans, NegativeSpansRejected) {
  const double bad[] = {1.0, -0.5};
  EXPECT_THROW((void)span_sequential(bad), std::invalid_argument);
  EXPECT_THROW((void)span_parallel(bad), std::invalid_argument);
}

TEST(CriticalBranch, PicksLargestTotal) {
  LatencyBreakdown small;
  small.uplink = 1.0;
  LatencyBreakdown big;
  big.relay = 10.0;
  const LatencyBreakdown branches[] = {small, big, small};
  const auto critical = critical_branch(branches);
  EXPECT_DOUBLE_EQ(critical.relay, 10.0);
  EXPECT_DOUBLE_EQ(critical.total(), 10.0);
}

TEST(CriticalBranch, EmptyRejected) {
  EXPECT_THROW((void)critical_branch({}), std::invalid_argument);
}

// Equal totals must tie-break deterministically to the *first* branch
// (strict > comparison): attribution of the round's span cannot depend on
// branch enumeration order beyond "first wins", or two runs of the same
// simulation could narrate different critical paths.
TEST(CriticalBranch, EqualTotalsTieBreakToTheFirstBranch) {
  LatencyBreakdown radio;
  radio.uplink = 4.0;
  radio.downlink = 2.0;
  LatencyBreakdown compute;
  compute.client_compute = 6.0;  // same total, different composition
  ASSERT_DOUBLE_EQ(radio.total(), compute.total());

  const LatencyBreakdown order_a[] = {radio, compute};
  const auto first = critical_branch(order_a);
  EXPECT_DOUBLE_EQ(first.uplink, 4.0);
  EXPECT_DOUBLE_EQ(first.client_compute, 0.0);

  const LatencyBreakdown order_b[] = {compute, radio};
  const auto second = critical_branch(order_b);
  EXPECT_DOUBLE_EQ(second.client_compute, 6.0);
  EXPECT_DOUBLE_EQ(second.uplink, 0.0);
}

// scaled() multiplies every component by the factor, so scaling by f then
// 1/f round-trips exactly for power-of-two factors (both multiplies are
// exact in binary) — the identity the ablation benches rely on when they
// rescale recorded chains.
TEST(Breakdown, ScaledRoundTripsExactlyForPowerOfTwoFactors) {
  const auto original = sample_breakdown();
  const auto round_trip = original.scaled(4.0).scaled(0.25);
  EXPECT_DOUBLE_EQ(round_trip.client_compute, original.client_compute);
  EXPECT_DOUBLE_EQ(round_trip.server_compute, original.server_compute);
  EXPECT_DOUBLE_EQ(round_trip.uplink, original.uplink);
  EXPECT_DOUBLE_EQ(round_trip.downlink, original.downlink);
  EXPECT_DOUBLE_EQ(round_trip.relay, original.relay);
  EXPECT_DOUBLE_EQ(round_trip.aggregation, original.aggregation);
  EXPECT_DOUBLE_EQ(round_trip.total(), original.total());

  const auto zero = original.scaled(0.0);
  EXPECT_DOUBLE_EQ(zero.total(), 0.0);
}

TEST(CriticalBranch, ParallelInvariant) {
  // The critical branch's total equals span_parallel over branch totals —
  // the identity the GSFL round accounting relies on.
  LatencyBreakdown a;
  a.client_compute = 3.0;
  LatencyBreakdown b;
  b.server_compute = 5.0;
  LatencyBreakdown c;
  c.downlink = 4.0;
  const LatencyBreakdown branches[] = {a, b, c};
  const double totals[] = {a.total(), b.total(), c.total()};
  EXPECT_DOUBLE_EQ(critical_branch(branches).total(),
                   span_parallel(totals));
}

}  // namespace
