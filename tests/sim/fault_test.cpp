// FaultPlan: the deterministic per-round fault script. A plan must be a
// pure function of (config, retry cap, round index, cohort size) — drawn
// twice it is identical; drawn for different rounds it is independent; and
// every drawn field respects its documented bounds.
#include <gtest/gtest.h>

#include <stdexcept>

#include "gsfl/sim/fault.hpp"

namespace {

using gsfl::sim::ClientFault;
using gsfl::sim::FaultConfig;
using gsfl::sim::FaultKind;
using gsfl::sim::FaultPlan;

FaultConfig busy_config() {
  FaultConfig config;
  config.crash_before_rate = 0.2;
  config.crash_after_rate = 0.15;
  config.downlink_loss_rate = 0.3;
  config.uplink_loss_rate = 0.3;
  config.straggler_rate = 0.4;
  config.straggler_slowdown_min = 2.0;
  config.straggler_slowdown_max = 6.0;
  config.seed = 1234;
  return config;
}

bool same_fault(const ClientFault& a, const ClientFault& b) {
  return a.crash_before == b.crash_before && a.crash_after == b.crash_after &&
         a.slowdown == b.slowdown &&
         a.downlink_attempts == b.downlink_attempts &&
         a.uplink_attempts == b.uplink_attempts;
}

TEST(FaultInjection, DrawIsAPureFunctionOfItsKey) {
  const auto config = busy_config();
  const auto a = FaultPlan::draw(config, 3, 7, 20);
  const auto b = FaultPlan::draw(config, 3, 7, 20);
  ASSERT_EQ(a.size(), 20u);
  ASSERT_EQ(b.size(), 20u);
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_TRUE(same_fault(a.client(c), b.client(c))) << "client " << c;
  }
}

TEST(FaultInjection, RoundsDrawIndependentStreams) {
  // Different round keys must yield different scripts (with these rates the
  // chance of 20 identical clients across two rounds is negligible) — and a
  // plan must not depend on how many draws earlier rounds consumed, which is
  // what keying by fork(round + 1) buys.
  const auto config = busy_config();
  const auto round0 = FaultPlan::draw(config, 3, 0, 20);
  const auto round1 = FaultPlan::draw(config, 3, 1, 20);
  bool any_difference = false;
  for (std::size_t c = 0; c < 20; ++c) {
    if (!same_fault(round0.client(c), round1.client(c))) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjection, InactiveConfigScriptsNothing) {
  const FaultConfig config;  // all rates zero
  EXPECT_FALSE(config.active());
  const auto plan = FaultPlan::draw(config, 3, 5, 8);
  for (std::size_t c = 0; c < plan.size(); ++c) {
    const auto& fault = plan.client(c);
    EXPECT_FALSE(fault.crash_before);
    EXPECT_FALSE(fault.crash_after);
    EXPECT_EQ(fault.slowdown, 1.0);
    EXPECT_EQ(fault.downlink_attempts, 1u);
    EXPECT_EQ(fault.uplink_attempts, 1u);
  }
}

TEST(FaultInjection, AttemptsStayWithinTheRetryCap) {
  FaultConfig config;
  config.downlink_loss_rate = 0.9;
  config.uplink_loss_rate = 0.9;
  config.seed = 7;
  const std::size_t cap = 4;
  bool saw_exhausted = false;
  bool saw_retry = false;
  for (std::uint64_t round = 0; round < 30; ++round) {
    const auto plan = FaultPlan::draw(config, cap, round, 10);
    for (std::size_t c = 0; c < plan.size(); ++c) {
      const auto& fault = plan.client(c);
      EXPECT_LE(fault.downlink_attempts, cap);
      EXPECT_LE(fault.uplink_attempts, cap);
      saw_exhausted |= fault.downlink_attempts == 0 || fault.uplink_attempts == 0;
      saw_retry |= fault.downlink_attempts > 1 || fault.uplink_attempts > 1;
    }
  }
  EXPECT_TRUE(saw_exhausted) << "loss rate 0.9 should exhaust the cap sometimes";
  EXPECT_TRUE(saw_retry) << "loss rate 0.9 should need retries sometimes";
}

TEST(FaultInjection, StragglerSlowdownStaysInItsRange) {
  FaultConfig config;
  config.straggler_rate = 1.0;  // every client a straggler
  config.straggler_slowdown_min = 3.0;
  config.straggler_slowdown_max = 5.0;
  const auto plan = FaultPlan::draw(config, 3, 2, 16);
  for (std::size_t c = 0; c < plan.size(); ++c) {
    EXPECT_GE(plan.client(c).slowdown, 3.0);
    EXPECT_LE(plan.client(c).slowdown, 5.0);
  }
}

TEST(FaultInjection, DrawValidatesItsArguments) {
  FaultConfig bad = busy_config();
  bad.crash_before_rate = 1.0;  // certain crash would hang every experiment
  EXPECT_THROW((void)FaultPlan::draw(bad, 3, 0, 4), std::exception);

  bad = busy_config();
  bad.straggler_slowdown_min = 0.5;  // a speedup is not a straggler
  EXPECT_THROW((void)FaultPlan::draw(bad, 3, 0, 4), std::exception);

  bad = busy_config();
  bad.straggler_slowdown_min = 9.0;  // min above max
  EXPECT_THROW((void)FaultPlan::draw(bad, 3, 0, 4), std::exception);

  EXPECT_THROW((void)FaultPlan::draw(busy_config(), 0, 0, 4), std::exception);
}

TEST(FaultInjection, FaultKindNamesAreStable) {
  EXPECT_STREQ(to_string(FaultKind::kNone), "none");
  EXPECT_STREQ(to_string(FaultKind::kCrashBeforeCompute),
               "crash-before-compute");
  EXPECT_STREQ(to_string(FaultKind::kDownlinkFailed), "downlink-failed");
  EXPECT_STREQ(to_string(FaultKind::kCrashAfterCompute),
               "crash-after-compute");
  EXPECT_STREQ(to_string(FaultKind::kUplinkFailed), "uplink-failed");
  EXPECT_STREQ(to_string(FaultKind::kLate), "late");
  EXPECT_STREQ(to_string(FaultKind::kCascade), "cascade");
}

}  // namespace
