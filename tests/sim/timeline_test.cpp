#include <gtest/gtest.h>
#include <sstream>

#include "gsfl/sim/timeline.hpp"

namespace {

using gsfl::sim::LatencyBreakdown;
using gsfl::sim::Timeline;

LatencyBreakdown cost_of(double uplink, double compute) {
  LatencyBreakdown b;
  b.uplink = uplink;
  b.server_compute = compute;
  return b;
}

TEST(Timeline, StartsEmptyAtZero) {
  const Timeline timeline;
  EXPECT_EQ(timeline.size(), 0u);
  EXPECT_DOUBLE_EQ(timeline.now_seconds(), 0.0);
}

TEST(Timeline, AppendAdvancesClock) {
  Timeline timeline;
  timeline.append("round 1", cost_of(2.0, 1.0));
  EXPECT_DOUBLE_EQ(timeline.now_seconds(), 3.0);
  timeline.append("round 2", cost_of(0.5, 0.5));
  EXPECT_DOUBLE_EQ(timeline.now_seconds(), 4.0);
  EXPECT_EQ(timeline.size(), 2u);
}

TEST(Timeline, EntriesRecordStartAndEnd) {
  Timeline timeline;
  timeline.append("a", cost_of(1.0, 0.0));
  timeline.append("b", cost_of(2.0, 0.0));
  EXPECT_DOUBLE_EQ(timeline.entry(0).start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(timeline.entry(0).end_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(timeline.entry(1).start_seconds, 1.0);
  EXPECT_DOUBLE_EQ(timeline.entry(1).end_seconds(), 3.0);
  EXPECT_EQ(timeline.entry(1).label, "b");
  EXPECT_THROW((void)timeline.entry(2), std::invalid_argument);
}

TEST(Timeline, TotalCostAggregates) {
  Timeline timeline;
  timeline.append("a", cost_of(1.0, 2.0));
  timeline.append("b", cost_of(3.0, 4.0));
  const auto total = timeline.total_cost();
  EXPECT_DOUBLE_EQ(total.uplink, 4.0);
  EXPECT_DOUBLE_EQ(total.server_compute, 6.0);
  EXPECT_DOUBLE_EQ(total.total(), timeline.now_seconds());
}

// Golden CSV: the exact bytes write_csv emits for a known timeline. All
// components are dyadic rationals, so the setprecision(10) default format
// prints them exactly and the golden string is stable across platforms.
TEST(Timeline, CsvGoldenRow) {
  Timeline timeline;
  LatencyBreakdown cost;
  cost.client_compute = 0.5;
  cost.server_compute = 0.25;
  cost.uplink = 1.5;
  cost.downlink = 2.0;
  cost.relay = 0.125;
  cost.aggregation = 4.0;  // total 8.375
  timeline.append("round 1", cost);
  timeline.append("round 2", cost.scaled(2.0));

  std::ostringstream out;
  timeline.write_csv(out);
  EXPECT_EQ(out.str(),
            "label,start_s,end_s,total_s,client_compute_s,server_compute_s,"
            "uplink_s,downlink_s,relay_s,aggregation_s\n"
            "round 1,0,8.375,8.375,0.5,0.25,1.5,2,0.125,4\n"
            "round 2,8.375,25.125,16.75,1,0.5,3,4,0.25,8\n");
}

TEST(Timeline, CsvHasHeaderAndRows) {
  Timeline timeline;
  timeline.append("round 1", cost_of(1.0, 0.5));
  std::ostringstream out;
  timeline.write_csv(out);
  const auto text = out.str();
  EXPECT_NE(text.find("label,start_s,end_s"), std::string::npos);
  EXPECT_NE(text.find("round 1"), std::string::npos);
  // Header + one row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

}  // namespace
