// Numeric gradient checking for layers.
//
// Strategy: project the layer output onto a fixed random direction R to get
// a scalar loss L = Σ forward(x)·R, whose analytic input/parameter gradients
// come from backward(R). Central finite differences on float32 need care:
// we use a relative/absolute mixed tolerance and a step sized to the value.
#pragma once

#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/common/rng.hpp"
#include "gsfl/nn/layer.hpp"

namespace gsfl::test {

struct GradCheckOptions {
  float step = 5e-3f;
  double rel_tol = 4e-2;
  double abs_tol = 4e-3;
};

/// Scalar projection loss and its output-gradient direction.
inline tensor::Tensor random_direction(const tensor::Shape& shape,
                                       common::Rng& rng) {
  return tensor::Tensor::uniform(shape, rng, -1.0f, 1.0f);
}

inline double projection_loss(nn::Layer& layer, const tensor::Tensor& input,
                              const tensor::Tensor& direction) {
  const auto out = layer.forward(input, /*train=*/true);
  double loss = 0.0;
  const auto od = out.data();
  const auto dd = direction.data();
  for (std::size_t i = 0; i < od.size(); ++i) {
    loss += static_cast<double>(od[i]) * dd[i];
  }
  return loss;
}

/// Check d(loss)/d(input) for every input element.
inline void check_input_gradient(nn::Layer& layer, tensor::Tensor input,
                                 common::Rng& rng,
                                 GradCheckOptions options = {}) {
  const auto out_shape = layer.output_shape(input.shape());
  const auto direction = random_direction(out_shape, rng);

  layer.zero_grad();
  (void)layer.forward(input, /*train=*/true);
  const auto analytic = layer.backward(direction);

  auto id = input.data();
  const auto ad = analytic.data();
  for (std::size_t i = 0; i < id.size(); ++i) {
    const float saved = id[i];
    id[i] = saved + options.step;
    const double plus = projection_loss(layer, input, direction);
    id[i] = saved - options.step;
    const double minus = projection_loss(layer, input, direction);
    id[i] = saved;
    const double numeric = (plus - minus) / (2.0 * options.step);
    const double tolerance =
        options.abs_tol + options.rel_tol * std::abs(numeric);
    EXPECT_NEAR(ad[i], numeric, tolerance)
        << "input gradient mismatch at flat index " << i;
  }
}

/// Check d(loss)/d(param) for every scalar of every parameter tensor.
inline void check_parameter_gradients(nn::Layer& layer, tensor::Tensor input,
                                      common::Rng& rng,
                                      GradCheckOptions options = {}) {
  const auto out_shape = layer.output_shape(input.shape());
  const auto direction = random_direction(out_shape, rng);

  layer.zero_grad();
  (void)layer.forward(input, /*train=*/true);
  (void)layer.backward(direction);

  const auto params = layer.parameters();
  const auto grads = layer.gradients();
  ASSERT_EQ(params.size(), grads.size());

  for (std::size_t p = 0; p < params.size(); ++p) {
    auto pd = params[p]->data();
    const auto gd = grads[p]->data();
    for (std::size_t i = 0; i < pd.size(); ++i) {
      const float saved = pd[i];
      pd[i] = saved + options.step;
      const double plus = projection_loss(layer, input, direction);
      pd[i] = saved - options.step;
      const double minus = projection_loss(layer, input, direction);
      pd[i] = saved;
      const double numeric = (plus - minus) / (2.0 * options.step);
      const double tolerance =
          options.abs_tol + options.rel_tol * std::abs(numeric);
      EXPECT_NEAR(gd[i], numeric, tolerance)
          << "parameter " << p << " gradient mismatch at flat index " << i;
    }
  }
}

}  // namespace gsfl::test
