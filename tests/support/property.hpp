// Property-test helpers for the determinism contract.
//
// The library's central promise — every result bitwise identical for any
// thread count, any panel split, any k-block length — is machine-checked by
// sweeping structured input spaces and comparing exactly. This header holds
// the sweep generators, the exact comparators, and the reference arithmetic
// those suites share, so each test states its property instead of re-rolling
// ad-hoc loops.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <ios>
#include <span>
#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/nn/layer.hpp"
#include "gsfl/schemes/adaptive.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/microkernel.hpp"
#include "gsfl/tensor/quantize.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace gsfl::test::prop {

namespace micro = gsfl::tensor::micro;

// ---- reference arithmetic --------------------------------------------------

/// One reference multiply-add step. On FMA targets the compiler contracts
/// the kernel's `acc += a·b` into fused multiply-adds, so the reference
/// must fold the same way — explicitly, so no auto-vectorized tail of a
/// reference loop is left uncontracted. Without FMA hardware the kernel
/// rounds the product and sum separately, and so does the reference. (A
/// build forcing -ffp-contract=off on FMA hardware would need the plain
/// variant.)
inline float mac_step(float a, float b, float acc) {
#if defined(__FMA__)
  return std::fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// Naive triple loop: acc folded over k ascending, then stored — the
/// arithmetic sequence the microkernel must reproduce exactly.
inline std::vector<float> naive_gemm(std::size_t m, std::size_t k,
                                     std::size_t n,
                                     const std::vector<float>& a,
                                     const std::vector<float>& b) {
  std::vector<float> c(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc = mac_step(a[i * k + p], b[p * n + j], acc);
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

/// Reference for the int8 quantized GEMM (GemmPrecision::kInt8): quantize A
/// per logical row and B per logical column with the library's own
/// nearest-even rule (micro::q8::scale_for / quantize — this reference pins
/// the *fold and dequant sequence*; the RNE suites pin the rounding
/// separately), accumulate the exact int32 dot naively, then dequantize
/// with the kernel's element transform sa·sb·float(acc). Exact integer
/// arithmetic means the kernel must match this bitwise for every thread
/// count, KC, and pack strategy.
inline std::vector<float> naive_gemm_q8(std::size_t m, std::size_t k,
                                        std::size_t n,
                                        const std::vector<float>& a,
                                        const std::vector<float>& b) {
  namespace q8 = micro::q8;
  std::vector<int> qa(m * k);
  std::vector<int> qb(k * n);
  std::vector<float> sa(m);
  std::vector<float> sb(n);
  for (std::size_t i = 0; i < m; ++i) {
    float max_abs = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      max_abs = std::max(max_abs, std::fabs(a[i * k + p]));
    }
    sa[i] = q8::scale_for(max_abs, q8::kQmaxA);
    const float inv = 1.0f / sa[i];
    for (std::size_t p = 0; p < k; ++p) {
      qa[i * k + p] = q8::quantize(a[i * k + p], inv, q8::kQmaxA);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    float max_abs = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      max_abs = std::max(max_abs, std::fabs(b[p * n + j]));
    }
    sb[j] = q8::scale_for(max_abs, q8::kQmaxB);
    const float inv = 1.0f / sb[j];
    for (std::size_t p = 0; p < k; ++p) {
      qb[p * n + j] = q8::quantize(b[p * n + j], inv, q8::kQmaxB);
    }
  }
  std::vector<float> c(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(qa[i * k + p]) *
               static_cast<std::int32_t>(qb[p * n + j]);
      }
      c[i * n + j] = sa[i] * sb[j] * static_cast<float>(acc);
    }
  }
  return c;
}

// ---- input generators ------------------------------------------------------

/// Deterministic random row-major matrix with entries in [-1, 1).
inline std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                        std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(rows * cols);
  for (auto& x : data) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return data;
}

inline std::vector<float> transposed(const std::vector<float>& src,
                                     std::size_t rows, std::size_t cols) {
  std::vector<float> dst(src.size());
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      dst[j * rows + i] = src[i * cols + j];
    }
  }
  return dst;
}

// ---- shape sweeps ----------------------------------------------------------

struct GemmCase {
  std::size_t m, k, n;
};

/// Every m, n remainder a panel can end in — [1, 2·MR) × [1, 2·NR) — with k
/// remainders on both sides of the register block: the exhaustive edge
/// geometry sweep.
inline std::vector<GemmCase> edge_gemm_cases() {
  const std::size_t ks[] = {1, 2, micro::kMR - 1, micro::kMR,
                            2 * micro::kMR + 1, 37};
  std::vector<GemmCase> cases;
  for (std::size_t m = 1; m < 2 * micro::kMR; ++m) {
    for (std::size_t n = 1; n < 2 * micro::kNR; ++n) {
      for (const std::size_t k : ks) cases.push_back({m, k, n});
    }
  }
  return cases;
}

/// k-block lengths that must all reproduce the unblocked fold bitwise:
/// degenerate strips, a strip shorter than the register block, off-multiple
/// strips, the production default, exactly k, and past k.
inline std::vector<std::size_t> kc_sweep(std::size_t k) {
  std::vector<std::size_t> kcs = {1, micro::kMR, 37, micro::kKC};
  kcs.push_back(k);
  kcs.push_back(k + 5);
  if (k > 1) kcs.push_back(k - 1);
  return kcs;
}

// ---- thread-count matrix ---------------------------------------------------

/// Lane counts the invariance suites sweep: serial, even, odd, oversubscribed.
inline const std::vector<std::size_t>& thread_matrix() {
  static const std::vector<std::size_t> counts = {1, 2, 3, 8};
  return counts;
}

/// Run fn once per thread-matrix lane count with the global pool resized,
/// then restore the default pool size. fn receives the lane count.
template <typename Fn>
void for_each_thread_count(Fn&& fn) {
  for (const std::size_t threads : thread_matrix()) {
    common::set_global_threads(threads);
    fn(threads);
  }
  common::set_global_threads(0);
}

// ---- pack-strategy axis ----------------------------------------------------

/// B-packing schedules the invariance suites sweep: the production
/// heuristic, the forced up-front full-panel pack, the forced per-k-block
/// interleaved pack, and the async-lane pack-ahead schedule. Results must
/// be bitwise identical across all four (the packed values and the
/// per-element fold are the same under every schedule).
inline const std::vector<tensor::PackStrategy>& pack_strategy_matrix() {
  static const std::vector<tensor::PackStrategy> strategies = {
      tensor::PackStrategy::kAuto, tensor::PackStrategy::kUpfront,
      tensor::PackStrategy::kInterleaved, tensor::PackStrategy::kPackAhead};
  return strategies;
}

/// Run fn once per pack strategy with the global override set, then restore
/// the production default. fn receives the strategy.
template <typename Fn>
void for_each_pack_strategy(Fn&& fn) {
  for (const tensor::PackStrategy strategy : pack_strategy_matrix()) {
    tensor::set_pack_strategy(strategy);
    fn(strategy);
  }
  tensor::set_pack_strategy(tensor::PackStrategy::kAuto);
}

/// Human-readable strategy name for failure messages.
inline const char* pack_strategy_name(tensor::PackStrategy strategy) {
  switch (strategy) {
    case tensor::PackStrategy::kAuto: return "auto";
    case tensor::PackStrategy::kUpfront: return "upfront";
    case tensor::PackStrategy::kInterleaved: return "interleaved";
    case tensor::PackStrategy::kPackAhead: return "pack-ahead";
  }
  return "?";
}

// ---- pipeline-depth axis ---------------------------------------------------

/// Round-pipeline depths the scheme invariance suites sweep: 1 is the
/// barriered run_round loop, 2 the steady-state pipeline (round r+1
/// submitted while round r drains), 3 a deeper in-flight window. Training
/// results must be bitwise identical across every depth (and every thread
/// count — the suites nest this axis inside for_each_thread_count).
inline const std::vector<std::size_t>& pipeline_depth_matrix() {
  static const std::vector<std::size_t> depths = {1, 2, 3};
  return depths;
}

/// Run fn once per pipeline depth. fn receives the depth; it is expected to
/// build a fresh trainer and drive it with schemes::run_rounds_pipelined
/// (or run_experiment with pipeline_depth) at that depth.
template <typename Fn>
void for_each_pipeline_depth(Fn&& fn) {
  for (const std::size_t depth : pipeline_depth_matrix()) fn(depth);
}

// ---- controller-policy axis ------------------------------------------------

/// Adaptive-controller policies the Adaptive* suites sweep. Every policy's
/// decisions must be a pure function of (config, candidate table,
/// observation history) — the bandit's exploration is round-keyed, not
/// engine-streamed — so adaptive rounds obey the same bitwise thread ×
/// pipeline-depth × pack-strategy invariance as static ones.
inline const std::vector<gsfl::schemes::AdaptivePolicy>& policy_matrix() {
  static const std::vector<gsfl::schemes::AdaptivePolicy> policies = {
      gsfl::schemes::AdaptivePolicy::kGreedy,
      gsfl::schemes::AdaptivePolicy::kPaper,
      gsfl::schemes::AdaptivePolicy::kBandit};
  return policies;
}

/// Run fn once per controller policy. fn receives the policy; it is
/// expected to build a fresh trainer + controller pair per invocation.
template <typename Fn>
void for_each_policy(Fn&& fn) {
  for (const gsfl::schemes::AdaptivePolicy policy : policy_matrix()) {
    fn(policy);
  }
}

/// Human-readable policy name for failure messages.
inline const char* policy_name(gsfl::schemes::AdaptivePolicy policy) {
  return gsfl::schemes::to_string(policy);
}

// ---- quantizer axis --------------------------------------------------------

/// Cut-layer quantizer configs the quantized-rounds suites sweep: the full
/// 8-bit wire setting (per-tensor and per-channel) plus aggressive low-bit
/// settings that stress the clamp and the scale-group stride. Quantization
/// is elementwise, so every config must preserve the bitwise thread /
/// pipeline-depth invariance the f32 path pins.
inline const std::vector<gsfl::tensor::QuantizerConfig>& quantizer_matrix() {
  static const std::vector<gsfl::tensor::QuantizerConfig> configs = {
      {.bits = 8, .per_channel = false},
      {.bits = 8, .per_channel = true},
      {.bits = 4, .per_channel = false},
      {.bits = 2, .per_channel = true},
  };
  return configs;
}

/// Run fn once per quantizer config.
template <typename Fn>
void for_each_quantizer(Fn&& fn) {
  for (const auto& config : quantizer_matrix()) fn(config);
}

// ---- fused-pair adapter ----------------------------------------------------

/// Adapter exposing a layer's fused layer→relu pair through the plain Layer
/// forward/backward contract, so the shared gradcheck helpers drive the
/// fused code path directly. L is any layer with relu-fusion support
/// (Dense, Conv2d).
template <typename L>
class FusedRelu final : public gsfl::nn::Layer {
 public:
  explicit FusedRelu(L layer) : layer_(std::move(layer)) {}
  [[nodiscard]] std::string name() const override {
    return "fused(" + layer_.name() + ",relu)";
  }
  [[nodiscard]] gsfl::nn::Tensor forward(const gsfl::nn::Tensor& x,
                                         bool train) override {
    return layer_.forward_fused_relu(x, train);
  }
  [[nodiscard]] gsfl::nn::Tensor backward(
      const gsfl::nn::Tensor& g) override {
    return layer_.backward_fused_relu(g);
  }
  [[nodiscard]] std::vector<gsfl::nn::Tensor*> parameters() override {
    return layer_.parameters();
  }
  [[nodiscard]] std::vector<gsfl::nn::Tensor*> gradients() override {
    return layer_.gradients();
  }
  [[nodiscard]] gsfl::nn::Shape output_shape(
      const gsfl::nn::Shape& s) const override {
    return layer_.output_shape(s);
  }
  [[nodiscard]] gsfl::nn::FlopCount flops(
      const gsfl::nn::Shape& s) const override {
    return layer_.flops(s);
  }
  [[nodiscard]] std::unique_ptr<gsfl::nn::Layer> clone() const override {
    return std::make_unique<FusedRelu>(*this);
  }

 private:
  L layer_;
};

// ---- exact comparators -----------------------------------------------------

/// Bitwise comparison of two float sequences; reports the first mismatching
/// index with full-precision values on failure.
inline ::testing::AssertionResult bitwise_equal(std::span<const float> actual,
                                                std::span<const float> expected) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << actual.size() << " vs " << expected.size();
  }
  for (std::size_t i = 0; i < actual.size(); ++i) {
    // operator== misses the -0.0f/+0.0f distinction and NaN != NaN would
    // hide a poisoned lane, so compare representations.
    std::uint32_t lhs = 0;
    std::uint32_t rhs = 0;
    static_assert(sizeof(float) == sizeof(std::uint32_t));
    std::memcpy(&lhs, &actual[i], sizeof lhs);
    std::memcpy(&rhs, &expected[i], sizeof rhs);
    if (lhs != rhs) {
      return ::testing::AssertionFailure()
             << "first mismatch at flat index " << i << ": "
             << std::hexfloat << actual[i] << " vs " << expected[i]
             << std::defaultfloat;
    }
  }
  return ::testing::AssertionSuccess();
}

inline ::testing::AssertionResult bitwise_equal(const tensor::Tensor& actual,
                                                const tensor::Tensor& expected) {
  if (!(actual.shape() == expected.shape())) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << actual.shape().to_string() << " vs "
           << expected.shape().to_string();
  }
  return bitwise_equal(actual.data(), expected.data());
}

}  // namespace gsfl::test::prop
