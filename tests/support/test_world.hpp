// Shared miniature "world" for scheme-level tests: a linearly separable
// two-class dataset of 2×2 single-channel images, a four-layer model with a
// natural cut point, and a small wireless network. Everything is seeded and
// tiny so scheme tests run in milliseconds.
#pragma once

#include "gsfl/common/rng.hpp"
#include "gsfl/data/dataset.hpp"
#include "gsfl/net/network.hpp"
#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/flatten.hpp"
#include "gsfl/nn/sequential.hpp"

namespace gsfl::test {

/// Class = 1 iff the mean pixel is positive; signal + mild noise.
inline data::Dataset make_separable_dataset(std::size_t n,
                                            common::Rng& rng) {
  tensor::Tensor images(tensor::Shape{n, 1, 2, 2});
  std::vector<std::int32_t> labels(n);
  auto px = images.data();
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.bernoulli(0.5);
    labels[i] = positive ? 1 : 0;
    const float base = positive ? 0.8f : -0.8f;
    for (std::size_t j = 0; j < 4; ++j) {
      px[i * 4 + j] =
          base + static_cast<float>(rng.normal(0.0, 0.3));
    }
  }
  return data::Dataset(std::move(images), std::move(labels), 2);
}

/// flatten → dense(4,8) → relu → dense(8,2); cut 2 puts {flatten, dense}
/// on the client and {relu, dense} on the server.
inline nn::Sequential make_tiny_model(common::Rng& rng) {
  nn::Sequential model;
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(4, 8, rng);
  model.emplace<nn::Relu>();
  model.emplace<nn::Dense>(8, 2, rng);
  return model;
}

inline constexpr std::size_t kTinyCut = 2;

inline net::WirelessNetwork make_tiny_network(std::size_t num_clients) {
  net::NetworkConfig config;
  config.total_bandwidth_hz = 10e6;
  std::vector<net::DeviceProfile> clients(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients[c].distance_m = 30.0 + 10.0 * static_cast<double>(c);
    clients[c].compute_flops = 1e9;
  }
  return net::WirelessNetwork(config, std::move(clients));
}

/// One dataset per client, all separable, distinct draws.
inline std::vector<data::Dataset> make_client_datasets(
    std::size_t num_clients, std::size_t samples_each, std::uint64_t seed) {
  common::Rng root(seed);
  std::vector<data::Dataset> out;
  out.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    auto rng = root.fork(100 + c);
    out.push_back(make_separable_dataset(samples_each, rng));
  }
  return out;
}

/// Exact equality of two models' full states.
inline bool states_equal(const nn::Sequential& a, const nn::Sequential& b) {
  const auto sa = a.state();
  const auto sb = b.state();
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] != sb[i]) return false;
  }
  return true;
}

}  // namespace gsfl::test
