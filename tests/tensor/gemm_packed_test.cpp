// PackedOperand / gemm_packed: the persistent-panel path must be bitwise
// identical to the re-pack-every-call gemm_raw path — same packed bytes,
// same per-element fold — for every edge geometry, thread count, pack
// strategy, and precision; and the Tensor::version() key its consumers use
// must move exactly when the data can have changed.
#include <gtest/gtest.h>

#include <vector>

#include "gsfl/tensor/gemm.hpp"
#include "support/property.hpp"

namespace {

namespace prop = gsfl::test::prop;
using gsfl::tensor::GemmPrecision;
using gsfl::tensor::PackedOperand;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using gsfl::tensor::Trans;

/// gemm_raw vs gemm_packed on the same operands; returns both outputs.
struct Pair {
  std::vector<float> raw;
  std::vector<float> packed;
};

Pair run_pair(std::size_t m, std::size_t k, std::size_t n,
              const std::vector<float>& a, const std::vector<float>& b,
              const gsfl::tensor::micro::Epilogue& ep,
              GemmPrecision precision) {
  Pair out{std::vector<float>(m * n), std::vector<float>(m * n)};
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo, b.data(),
                         Trans::kNo, 0.0f, out.raw.data(), ep, precision);
  PackedOperand pb;
  pb.pack_b(b.data(), Trans::kNo, k, n);
  if (precision == GemmPrecision::kInt8) {
    pb.pack_b_q8(b.data(), Trans::kNo, k, n);
  }
  gsfl::tensor::gemm_packed(m, k, n, 1.0f, a.data(), Trans::kNo, pb, 0.0f,
                            out.packed.data(), ep, precision);
  return out;
}

TEST(PackedGemm, MatchesGemmRawOnEdgeGeometries) {
  for (const auto& c : prop::edge_gemm_cases()) {
    const auto a = prop::random_matrix(c.m, c.k, 0xA000 + c.m * 131 + c.n);
    const auto b = prop::random_matrix(c.k, c.n, 0xB000 + c.m * 131 + c.n);
    const auto pair = run_pair(c.m, c.k, c.n, a, b, {}, GemmPrecision::kF32);
    ASSERT_TRUE(prop::bitwise_equal(pair.packed, pair.raw))
        << "m=" << c.m << " k=" << c.k << " n=" << c.n;
  }
}

TEST(PackedGemm, BitwiseInvariantAcrossThreadsAndStrategies) {
  // Big enough to cross the parallel cutoff in both split directions:
  // wide-n (column split over strip groups) and tall-m (row split).
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{16, 256, 640}, {320, 96, 48}};
  for (const auto& s : shapes) {
    const auto a = prop::random_matrix(s.m, s.k, 0xC0FE);
    const auto b = prop::random_matrix(s.k, s.n, 0xD0FE);
    const std::vector<float> bias = prop::random_matrix(1, s.n, 0xE0FE);
    const gsfl::tensor::micro::Epilogue ep{
        .kind = gsfl::tensor::micro::Epilogue::Kind::kBiasRelu,
        .per_row = false,
        .bias = bias.data()};
    std::vector<float> baseline;
    prop::for_each_thread_count([&](std::size_t threads) {
      prop::for_each_pack_strategy([&](gsfl::tensor::PackStrategy strategy) {
        const auto pair =
            run_pair(s.m, s.k, s.n, a, b, ep, GemmPrecision::kF32);
        ASSERT_TRUE(prop::bitwise_equal(pair.packed, pair.raw))
            << s.m << "x" << s.k << "x" << s.n << " threads=" << threads
            << " strategy=" << prop::pack_strategy_name(strategy);
        if (baseline.empty()) baseline = pair.packed;
        ASSERT_TRUE(prop::bitwise_equal(pair.packed, baseline))
            << "cross-config divergence at threads=" << threads;
      });
    });
  }
}

TEST(PackedGemm, Int8MatchesGemmRawInt8) {
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{7, 33, 19}, {16, 256, 640}, {320, 96, 48}};
  for (const auto& s : shapes) {
    const auto a = prop::random_matrix(s.m, s.k, 0x1111);
    const auto b = prop::random_matrix(s.k, s.n, 0x2222);
    prop::for_each_thread_count([&](std::size_t threads) {
      const auto pair =
          run_pair(s.m, s.k, s.n, a, b, {}, GemmPrecision::kInt8);
      ASSERT_TRUE(prop::bitwise_equal(pair.packed, pair.raw))
          << s.m << "x" << s.k << "x" << s.n << " threads=" << threads;
    });
  }
}

TEST(PackedGemm, PackATranposeMatchesDenseWeightUse) {
  // The Dense consumer packs Wᵀ (trans kYes): op(B) = transpose of the
  // stored (out × in) weight. Equivalent to packing the materialized
  // transpose with trans kNo.
  const std::size_t in = 37;
  const std::size_t out = 21;
  const auto w = prop::random_matrix(out, in, 0x3333);
  const auto wt = prop::transposed(w, out, in);
  const auto x = prop::random_matrix(5, in, 0x4444);

  PackedOperand via_trans;
  via_trans.pack_b(w.data(), Trans::kYes, in, out);
  PackedOperand via_copy;
  via_copy.pack_b(wt.data(), Trans::kNo, in, out);

  std::vector<float> c1(5 * out);
  std::vector<float> c2(5 * out);
  gsfl::tensor::gemm_packed(5, in, out, 1.0f, x.data(), Trans::kNo,
                            via_trans, 0.0f, c1.data(), {});
  gsfl::tensor::gemm_packed(5, in, out, 1.0f, x.data(), Trans::kNo, via_copy,
                            0.0f, c2.data(), {});
  EXPECT_TRUE(prop::bitwise_equal(std::span<const float>(c1),
                                  std::span<const float>(c2)));
}

// ---- the version key the persistent-pack consumers rely on ----------------

TEST(TensorVersion, MutationsBumpTheCounter) {
  Tensor t(Shape{2, 3});
  const auto v0 = std::as_const(t).version();
  (void)std::as_const(t).data();   // const read: no bump
  (void)std::as_const(t).at(0);
  EXPECT_EQ(std::as_const(t).version(), v0);

  (void)t.data();                  // mutable access: bump
  EXPECT_GT(std::as_const(t).version(), v0);

  const auto v1 = std::as_const(t).version();
  t.fill(1.0f);
  t.at(0) = 2.0f;
  t.scale_(0.5f);
  EXPECT_GT(std::as_const(t).version(), v1);
}

TEST(TensorVersion, AssignmentBumpsDestination) {
  Tensor a(Shape{4});
  Tensor b(Shape{4});
  b.fill(3.0f);
  const auto va = std::as_const(a).version();
  a = b;
  EXPECT_GT(std::as_const(a).version(), va);
  const auto va2 = std::as_const(a).version();
  a = Tensor(Shape{2});
  EXPECT_GT(std::as_const(a).version(), va2);
}

}  // namespace
