#include <gtest/gtest.h>

#include "gsfl/common/rng.hpp"
#include "gsfl/tensor/gemm.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::matmul;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using gsfl::tensor::Trans;
using gsfl::tensor::transpose;

/// Triple-loop reference implementation.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a.at2(i, kk) * b.at2(kk, j);
      }
      c.at2(i, j) = acc;
    }
  }
  return c;
}

TEST(Gemm, TinyHandComputedCase) {
  const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const auto c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(1);
  const auto a = Tensor::uniform(Shape{5, 5}, rng, -1, 1);
  Tensor eye(Shape{5, 5});
  for (std::size_t i = 0; i < 5; ++i) eye.at2(i, i) = 1.0f;
  EXPECT_LT(Tensor::max_abs_diff(matmul(a, eye), a), 1e-6);
  EXPECT_LT(Tensor::max_abs_diff(matmul(eye, a), a), 1e-6);
}

TEST(Gemm, TransposeOutOfPlace) {
  const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const auto t = transpose(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(t.at2(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(t.at2(2, 0), 3.0f);
}

TEST(Gemm, TransAMatchesExplicitTranspose) {
  Rng rng(2);
  const auto a = Tensor::uniform(Shape{7, 4}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{7, 5}, rng, -1, 1);
  const auto fast = matmul(a, b, Trans::kYes, Trans::kNo);
  const auto reference = naive_matmul(transpose(a), b);
  EXPECT_LT(Tensor::max_abs_diff(fast, reference), 1e-4);
}

TEST(Gemm, TransBMatchesExplicitTranspose) {
  Rng rng(3);
  const auto a = Tensor::uniform(Shape{4, 7}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{5, 7}, rng, -1, 1);
  const auto fast = matmul(a, b, Trans::kNo, Trans::kYes);
  const auto reference = naive_matmul(a, transpose(b));
  EXPECT_LT(Tensor::max_abs_diff(fast, reference), 1e-4);
}

TEST(Gemm, BothTransposed) {
  Rng rng(4);
  const auto a = Tensor::uniform(Shape{6, 3}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{5, 6}, rng, -1, 1);
  const auto fast = matmul(a, b, Trans::kYes, Trans::kYes);
  const auto reference = naive_matmul(transpose(a), transpose(b));
  EXPECT_LT(Tensor::max_abs_diff(fast, reference), 1e-4);
}

TEST(Gemm, AlphaScalesProduct) {
  Rng rng(5);
  const auto a = Tensor::uniform(Shape{3, 3}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{3, 3}, rng, -1, 1);
  Tensor c(Shape{3, 3});
  gemm(2.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  const auto reference = naive_matmul(a, b);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(c.at(i), 2.0f * reference.at(i), 1e-4);
  }
}

TEST(Gemm, BetaAccumulatesIntoC) {
  Rng rng(6);
  const auto a = Tensor::uniform(Shape{3, 3}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{3, 3}, rng, -1, 1);
  auto c = Tensor::full(Shape{3, 3}, 10.0f);
  gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 1.0f, c);
  const auto reference = naive_matmul(a, b);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(c.at(i), 10.0f + reference.at(i), 1e-4);
  }
}

TEST(Gemm, BetaHalfScalesExistingC) {
  const Tensor a(Shape{1, 1}, {0.0f});
  const Tensor b(Shape{1, 1}, {0.0f});
  Tensor c(Shape{1, 1}, {8.0f});
  gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.5f, c);
  EXPECT_FLOAT_EQ(c.at(0), 4.0f);
}

TEST(Gemm, ShapeMismatchesThrow) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{4, 2});  // inner dims disagree
  Tensor c(Shape{2, 2});
  EXPECT_THROW(gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c),
               std::invalid_argument);

  const Tensor b_ok(Shape{3, 2});
  Tensor c_bad(Shape{3, 3});
  EXPECT_THROW(gemm(1.0f, a, Trans::kNo, b_ok, Trans::kNo, 0.0f, c_bad),
               std::invalid_argument);
}

TEST(Gemm, NonMatrixRankThrows) {
  const Tensor a(Shape{2, 3, 4});
  const Tensor b(Shape{3, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

struct GemmSize {
  std::size_t m, k, n;
};

class GemmSizeSweep : public ::testing::TestWithParam<GemmSize> {};

TEST_P(GemmSizeSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(1000 + m * 31 + k * 7 + n);
  const auto a = Tensor::uniform(Shape{m, k}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{k, n}, rng, -1, 1);
  const auto fast = matmul(a, b);
  const auto reference = naive_matmul(a, b);
  // Accumulation-order differences scale roughly with k.
  EXPECT_LT(Tensor::max_abs_diff(fast, reference),
            1e-6 * static_cast<double>(k) + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmSizeSweep,
    ::testing::Values(GemmSize{1, 1, 1}, GemmSize{1, 17, 1},
                      GemmSize{2, 3, 4}, GemmSize{16, 16, 16},
                      GemmSize{33, 65, 17},    // crosses block boundaries
                      GemmSize{64, 128, 256},  // exactly one block each
                      GemmSize{65, 129, 257},  // one past each block
                      GemmSize{100, 1, 100}, GemmSize{1, 200, 1}));

}  // namespace
