#include <gtest/gtest.h>

#include "gsfl/common/rng.hpp"
#include "gsfl/tensor/im2col.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::col2im_accumulate;
using gsfl::tensor::ConvGeometry;
using gsfl::tensor::im2col;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(ConvGeometry, OutputDims) {
  const ConvGeometry g{.in_channels = 3, .in_h = 32, .in_w = 32,
                       .kernel = 3, .stride = 1, .pad = 1};
  EXPECT_EQ(g.out_h(), 32u);
  EXPECT_EQ(g.out_w(), 32u);
  EXPECT_EQ(g.patch_size(), 27u);
  EXPECT_EQ(g.out_positions(), 1024u);
}

TEST(ConvGeometry, StrideAndNoPad) {
  const ConvGeometry g{.in_channels = 1, .in_h = 5, .in_w = 7,
                       .kernel = 3, .stride = 2, .pad = 0};
  EXPECT_EQ(g.out_h(), 2u);
  EXPECT_EQ(g.out_w(), 3u);
}

TEST(Im2col, IdentityKernelCopiesPixels) {
  // 1x1 kernel, stride 1, no pad: columns are exactly the image pixels.
  Tensor image(Shape{1, 2, 3, 3});
  for (std::size_t i = 0; i < image.numel(); ++i) {
    image.at(i) = static_cast<float>(i);
  }
  const ConvGeometry g{.in_channels = 2, .in_h = 3, .in_w = 3,
                       .kernel = 1, .stride = 1, .pad = 0};
  const auto cols = im2col(image, 0, g);
  EXPECT_EQ(cols.shape(), Shape({2, 9}));
  for (std::size_t i = 0; i < 18; ++i) {
    EXPECT_FLOAT_EQ(cols.at(i), static_cast<float>(i));
  }
}

TEST(Im2col, HandComputed3x3Patch) {
  // 3x3 image, 2x2 kernel, stride 1, no pad → 4 positions of 4 values.
  Tensor image(Shape{1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) image.at(i) = static_cast<float>(i + 1);
  const ConvGeometry g{.in_channels = 1, .in_h = 3, .in_w = 3,
                       .kernel = 2, .stride = 1, .pad = 0};
  const auto cols = im2col(image, 0, g);
  ASSERT_EQ(cols.shape(), Shape({4, 4}));
  // Row layout: (ky,kx) pairs in order (0,0),(0,1),(1,0),(1,1);
  // column layout: output positions row-major.
  // Position (0,0) covers pixels {1,2,4,5}.
  EXPECT_FLOAT_EQ(cols.at2(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at2(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(cols.at2(2, 0), 4.0f);
  EXPECT_FLOAT_EQ(cols.at2(3, 0), 5.0f);
  // Position (1,1) covers pixels {5,6,8,9}.
  EXPECT_FLOAT_EQ(cols.at2(0, 3), 5.0f);
  EXPECT_FLOAT_EQ(cols.at2(3, 3), 9.0f);
}

TEST(Im2col, PaddingYieldsZeros) {
  Tensor image = Tensor::ones(Shape{1, 1, 2, 2});
  const ConvGeometry g{.in_channels = 1, .in_h = 2, .in_w = 2,
                       .kernel = 3, .stride = 1, .pad = 1};
  const auto cols = im2col(image, 0, g);
  ASSERT_EQ(cols.shape(), Shape({9, 4}));
  // Top-left output position: kernel row 0 entirely in padding.
  EXPECT_FLOAT_EQ(cols.at2(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at2(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at2(2, 0), 0.0f);
  // Center of the kernel hits the real pixel.
  EXPECT_FLOAT_EQ(cols.at2(4, 0), 1.0f);
}

TEST(Im2col, BatchIndexSelectsImage) {
  Tensor batch(Shape{2, 1, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) batch.at(i) = 1.0f;       // image 0
  for (std::size_t i = 4; i < 8; ++i) batch.at(i) = 2.0f;       // image 1
  const ConvGeometry g{.in_channels = 1, .in_h = 2, .in_w = 2,
                       .kernel = 2, .stride = 1, .pad = 0};
  EXPECT_FLOAT_EQ(im2col(batch, 0, g).at(0), 1.0f);
  EXPECT_FLOAT_EQ(im2col(batch, 1, g).at(0), 2.0f);
  EXPECT_THROW(im2col(batch, 2, g), std::invalid_argument);
}

TEST(Col2im, AdjointProperty) {
  // <im2col(x), Y> == <x, col2im(Y)> for all Y — the defining property of
  // the adjoint, which is what backward relies on.
  Rng rng(11);
  const ConvGeometry g{.in_channels = 2, .in_h = 5, .in_w = 4,
                       .kernel = 3, .stride = 2, .pad = 1};
  const auto x = Tensor::uniform(Shape{1, 2, 5, 4}, rng, -1, 1);
  const auto y = Tensor::uniform(
      Shape{g.patch_size(), g.out_positions()}, rng, -1, 1);

  const auto cols = im2col(x, 0, g);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols.at(i)) * y.at(i);
  }

  Tensor back(Shape{1, 2, 5, 4});
  col2im_accumulate(y, g, back, 0);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.at(i)) * back.at(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(Col2im, AccumulatesRatherThanOverwrites) {
  const ConvGeometry g{.in_channels = 1, .in_h = 2, .in_w = 2,
                       .kernel = 2, .stride = 1, .pad = 0};
  const auto ones = Tensor::ones(Shape{4, 1});
  Tensor grad = Tensor::full(Shape{1, 1, 2, 2}, 5.0f);
  col2im_accumulate(ones, g, grad, 0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(grad.at(i), 6.0f);
}

TEST(Col2im, OverlappingWindowsSumContributions) {
  // 3x1 image, kernel 2, stride 1: middle pixel is covered twice.
  const ConvGeometry g{.in_channels = 1, .in_h = 3, .in_w = 1,
                       .kernel = 1, .stride = 1, .pad = 0};
  // Trivial case first: kernel 1 has no overlap.
  Tensor grad(Shape{1, 1, 3, 1});
  col2im_accumulate(Tensor::ones(Shape{1, 3}), g, grad, 0);
  EXPECT_FLOAT_EQ(grad.at(1), 1.0f);

  const ConvGeometry g2{.in_channels = 1, .in_h = 3, .in_w = 1,
                        .kernel = 2, .stride = 1, .pad = 0};
  // kernel height 2... but width is 1 so kernel must be 1 wide; use square
  // geometry on a 3x3 image instead.
  const ConvGeometry g3{.in_channels = 1, .in_h = 3, .in_w = 3,
                        .kernel = 2, .stride = 1, .pad = 0};
  (void)g2;
  Tensor grad3(Shape{1, 1, 3, 3});
  col2im_accumulate(Tensor::ones(Shape{4, 4}), g3, grad3, 0);
  // Center pixel (1,1) is covered by all four 2x2 windows.
  EXPECT_FLOAT_EQ(grad3.at4(0, 0, 1, 1), 4.0f);
  // Corner (0,0) only by one window.
  EXPECT_FLOAT_EQ(grad3.at4(0, 0, 0, 0), 1.0f);
  // Edge (0,1) by two windows.
  EXPECT_FLOAT_EQ(grad3.at4(0, 0, 0, 1), 2.0f);
}

TEST(Col2im, ShapeValidation) {
  const ConvGeometry g{.in_channels = 1, .in_h = 3, .in_w = 3,
                       .kernel = 2, .stride = 1, .pad = 0};
  Tensor grad(Shape{1, 1, 3, 3});
  EXPECT_THROW(col2im_accumulate(Tensor(Shape{3, 4}), g, grad, 0),
               std::invalid_argument);
  EXPECT_THROW(col2im_accumulate(Tensor(Shape{4, 5}), g, grad, 0),
               std::invalid_argument);
}

}  // namespace
