// The microkernel's determinism pitch is that every C element is produced
// by one accumulator folded over k in ascending order — exactly the naive
// triple loop. These tests hold it to that *bitwise*, across every edge
// geometry a panel can end in, across k-block lengths (blocked sweeps park
// raw partials in C and resume them — a lossless float32 store/reload, so
// the fold never reassociates), across write-back epilogues, and across
// thread counts. Sweep generators, exact comparators, and the naive
// reference live in tests/support/property.hpp.
#include <gtest/gtest.h>

#include <vector>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/microkernel.hpp"
#include "support/property.hpp"

namespace {

using gsfl::tensor::Trans;
namespace micro = gsfl::tensor::micro;
namespace prop = gsfl::test::prop;

TEST(Microkernel, BlockConstantsAreSane) {
  static_assert(micro::kMR >= 4);
  static_assert(micro::kNR >= 8 && micro::kNR % micro::kSimdWidth == 0);
  static_assert(micro::kKC >= micro::kNR);
  EXPECT_EQ(micro::round_up(1, micro::kMR), micro::kMR);
  EXPECT_EQ(micro::packed_a_floats(micro::kMR + 1, 3),
            2 * micro::kMR * 3);
  EXPECT_EQ(micro::packed_b_floats(3, micro::kNR), micro::kNR * 3);
}

TEST(Microkernel, PackAPadsTailRowsWithZeros) {
  const std::size_t rows = micro::kMR + 2;  // one full strip + a 2-row tail
  const std::size_t k = 5;
  const auto a = prop::random_matrix(rows, k, 11);
  std::vector<float> pa(micro::packed_a_floats(rows, k), -1.0f);
  micro::pack_a(a.data(), k, rows, k, pa.data());
  // Strip 0, k step p holds rows 0..MR-1 of column p.
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < micro::kMR; ++i) {
      EXPECT_EQ(pa[p * micro::kMR + i], a[i * k + p]);
    }
  }
  // Strip 1 holds the 2 tail rows then zero padding.
  const float* strip1 = pa.data() + micro::kMR * k;
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < micro::kMR; ++i) {
      const float expected =
          i < 2 ? a[(micro::kMR + i) * k + p] : 0.0f;
      EXPECT_EQ(strip1[p * micro::kMR + i], expected);
    }
  }
}

TEST(Microkernel, PackBPadsTailColumnsWithZeros) {
  const std::size_t k = 4;
  const std::size_t cols = micro::kNR + 3;
  const auto b = prop::random_matrix(k, cols, 12);
  std::vector<float> pb(micro::packed_b_floats(k, cols), -1.0f);
  micro::pack_b(b.data(), cols, k, cols, pb.data());
  const float* strip1 = pb.data() + micro::kNR * k;
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < micro::kNR; ++j) {
      EXPECT_EQ(pb[p * micro::kNR + j], b[p * cols + j]);
      const float expected = j < 3 ? b[p * cols + micro::kNR + j] : 0.0f;
      EXPECT_EQ(strip1[p * micro::kNR + j], expected);
    }
  }
}

TEST(Microkernel, TransposedPacksMatchUntransposedOnes) {
  const std::size_t rows = 2 * micro::kMR + 3;
  const std::size_t cols = micro::kNR + 5;
  const std::size_t k = 7;
  const auto a = prop::random_matrix(rows, k, 13);
  const auto at = prop::transposed(a, rows, k);
  std::vector<float> pa(micro::packed_a_floats(rows, k));
  std::vector<float> pat(pa.size());
  micro::pack_a(a.data(), k, rows, k, pa.data());
  micro::pack_a_trans(at.data(), rows, rows, k, pat.data());
  EXPECT_EQ(pa, pat);

  const auto b = prop::random_matrix(k, cols, 14);
  const auto bt = prop::transposed(b, k, cols);
  std::vector<float> pb(micro::packed_b_floats(k, cols));
  std::vector<float> pbt(pb.size());
  micro::pack_b(b.data(), cols, k, cols, pb.data());
  micro::pack_b_trans(bt.data(), k, k, cols, pbt.data());
  EXPECT_EQ(pb, pbt);
}

// Every edge geometry a panel can end in, checked bitwise against the naive
// triple loop (prop::edge_gemm_cases enumerates the sweep).
TEST(Microkernel, EdgeGeometrySweepIsBitwiseExact) {
  for (const auto& [m, k, n] : prop::edge_gemm_cases()) {
    const auto a = prop::random_matrix(m, k, 100 + m * 131 + n * 17 + k);
    const auto b = prop::random_matrix(k, n, 200 + m + n * 29 + k * 7);
    const auto reference = prop::naive_gemm(m, k, n, a, b);
    std::vector<float> c(m * n, -7.0f);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                           c.data());
    ASSERT_TRUE(prop::bitwise_equal(c, reference))
        << "m=" << m << " n=" << n << " k=" << k;
  }
}

// Interior geometry (several full strips plus remainders, k past typical
// unroll factors) stays bitwise-exact too: blocking must never reassociate
// the k fold. The 2048-deep case crosses several KC blocks — the raw
// partial store/reload must reproduce the naive single fold exactly.
TEST(Microkernel, LargeShapesAreBitwiseExact) {
  const prop::GemmCase cases[] = {
      {4 * micro::kMR + 1, 129, 3 * micro::kNR + 5},
      {16, 27, 256},    // conv1-like
      {32, 144, 196},   // conv2-like
      {16, 2048, 128},  // dense1 — k spans multiple KC blocks
  };
  for (const auto& [m, k, n] : cases) {
    const auto a = prop::random_matrix(m, k, 300 + m);
    const auto b = prop::random_matrix(k, n, 400 + n);
    const auto reference = prop::naive_gemm(m, k, n, a, b);
    std::vector<float> c(m * n);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    ASSERT_TRUE(prop::bitwise_equal(c, reference))
        << "m=" << m << " n=" << n << " k=" << k;
  }
}

// The trans variants must equal packing a materialized transpose — bitwise,
// since packing is the only place the layouts differ.
TEST(Microkernel, TransVariantsAreBitwiseExact) {
  const std::size_t m = micro::kMR + 2;
  const std::size_t k = 33;
  const std::size_t n = micro::kNR + 9;
  const auto a = prop::random_matrix(m, k, 21);
  const auto b = prop::random_matrix(k, n, 22);
  const auto at = prop::transposed(a, m, k);
  const auto bt = prop::transposed(b, k, n);
  const auto reference = prop::naive_gemm(m, k, n, a, b);

  std::vector<float> c(m * n);
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, at.data(), Trans::kYes, b.data(),
                         Trans::kNo, 0.0f, c.data());
  EXPECT_TRUE(prop::bitwise_equal(c, reference));
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo, bt.data(),
                         Trans::kYes, 0.0f, c.data());
  EXPECT_TRUE(prop::bitwise_equal(c, reference));
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, at.data(), Trans::kYes, bt.data(),
                         Trans::kYes, 0.0f, c.data());
  EXPECT_TRUE(prop::bitwise_equal(c, reference));
}

TEST(Microkernel, BetaAccumulatesAndKZeroScales) {
  const std::size_t m = 3;
  const std::size_t n = micro::kNR + 1;
  const auto a = prop::random_matrix(m, 5, 31);
  const auto b = prop::random_matrix(5, n, 32);
  const auto product = prop::naive_gemm(m, 5, n, a, b);
  std::vector<float> c(m * n, 2.0f);
  gsfl::tensor::gemm_raw(m, 5, n, 1.0f, a.data(), b.data(), 1.0f, c.data());
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(c[i], product[i] + 2.0f * 1.0f);
  }
  // k == 0: the product term vanishes, C = beta·C.
  gsfl::tensor::gemm_raw(m, 0, n, 1.0f, a.data(), b.data(), 0.5f, c.data());
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(c[i], 0.5f * (product[i] + 2.0f));
  }
}

// beta != 0 with k past the KC default exercises the single-block fallback
// (raw partials may not clobber the accumuland C): still the naive fold
// plus one beta·c term, bitwise.
TEST(Microkernel, DeepBetaAccumulationIsBitwiseExact) {
  const std::size_t m = micro::kMR + 1;
  const std::size_t k = 2 * micro::kKC + 19;
  const std::size_t n = micro::kNR + 3;
  const auto a = prop::random_matrix(m, k, 41);
  const auto b = prop::random_matrix(k, n, 42);
  const auto product = prop::naive_gemm(m, k, n, a, b);
  std::vector<float> c(m * n, 3.0f);
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 1.0f, c.data());
  for (std::size_t i = 0; i < m * n; ++i) {
    ASSERT_EQ(c[i], product[i] + 3.0f) << "flat index " << i;
  }
}

// ---- per-slice packing ------------------------------------------------------
// pack_b_slice must assemble, slice by slice, exactly the panel pack_b
// builds in one pass — same floats, same strip order — for every slice
// length, on both source layouts. That identity is what makes interleaved
// packing bitwise invisible.

TEST(Microkernel, PackBSliceAssemblesTheFullPanelSliceBySlice) {
  const std::size_t cols_cases[] = {micro::kNR - 3, micro::kNR + 5,
                                    (micro::kPackSweepMaxStrips + 2) *
                                        micro::kNR};
  const std::size_t k = 2 * micro::kKC + 37;
  for (const std::size_t cols : cols_cases) {
    const auto b = prop::random_matrix(k, cols, 900 + cols);
    std::vector<float> full(micro::packed_b_floats(k, cols));
    micro::pack_b(b.data(), cols, k, cols, full.data());
    for (const std::size_t kc : prop::kc_sweep(k)) {
      std::vector<float> slice(
          micro::packed_b_slice_floats(std::min(kc, k), cols), -3.0f);
      for (std::size_t p0 = 0; p0 < k; p0 += kc) {
        const std::size_t p1 = std::min(p0 + kc, k);
        const std::size_t len = p1 - p0;
        micro::pack_b_slice(b.data() + p0 * cols, cols, len, cols,
                            slice.data());
        // Strip s of the slice vs rows [p0, p1) of strip s in the panel.
        for (std::size_t s = 0; s * micro::kNR < cols; ++s) {
          const float* strip_full =
              full.data() + s * micro::kNR * k + p0 * micro::kNR;
          const float* strip_slice = slice.data() + s * micro::kNR * len;
          ASSERT_TRUE(prop::bitwise_equal(
              std::span<const float>(strip_slice, len * micro::kNR),
              std::span<const float>(strip_full, len * micro::kNR)))
              << "cols=" << cols << " kc=" << kc << " p0=" << p0
              << " strip=" << s;
        }
      }
    }
  }
}

TEST(Microkernel, PackBTransSliceAssemblesTheFullPanelSliceBySlice) {
  const std::size_t cols = micro::kNR + 7;
  const std::size_t k = micro::kKC + 41;
  const auto b = prop::random_matrix(k, cols, 950);
  const auto bt = prop::transposed(b, k, cols);  // (cols × k) row-major
  std::vector<float> full(micro::packed_b_floats(k, cols));
  micro::pack_b_trans(bt.data(), k, k, cols, full.data());
  for (const std::size_t kc : prop::kc_sweep(k)) {
    std::vector<float> slice(
        micro::packed_b_slice_floats(std::min(kc, k), cols), -3.0f);
    for (std::size_t p0 = 0; p0 < k; p0 += kc) {
      const std::size_t p1 = std::min(p0 + kc, k);
      const std::size_t len = p1 - p0;
      micro::pack_b_trans_slice(bt.data() + p0, k, len, cols, slice.data());
      for (std::size_t s = 0; s * micro::kNR < cols; ++s) {
        const float* strip_full =
            full.data() + s * micro::kNR * k + p0 * micro::kNR;
        const float* strip_slice = slice.data() + s * micro::kNR * len;
        ASSERT_TRUE(prop::bitwise_equal(
            std::span<const float>(strip_slice, len * micro::kNR),
            std::span<const float>(strip_full, len * micro::kNR)))
            << "kc=" << kc << " p0=" << p0 << " strip=" << s;
      }
    }
  }
}

// Driving macrokernel_block over freshly packed slices must reproduce the
// naive fold bitwise for every slice length — the interleaved schedule is
// just a different time to pack the same floats.
TEST(Microkernel, InterleavedBlockSweepIsBitwiseExact) {
  const prop::GemmCase cases[] = {
      {2 * micro::kMR + 1, micro::kKC + 13, micro::kNR + 5},
      {16, 2048, 128},
  };
  for (const auto& [m, k, n] : cases) {
    const auto a = prop::random_matrix(m, k, 700 + k);
    const auto b = prop::random_matrix(k, n, 800 + k);
    const auto reference = prop::naive_gemm(m, k, n, a, b);
    std::vector<float> pa(micro::packed_a_floats(m, k));
    micro::pack_a(a.data(), k, m, k, pa.data());
    for (const std::size_t kc : prop::kc_sweep(k)) {
      std::vector<float> c(m * n, -5.0f);
      std::vector<float> pb(
          micro::packed_b_slice_floats(std::min(kc, k), n));
      const std::size_t blocks = (k + kc - 1) / kc;
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        const std::size_t p0 = blk * kc;
        const std::size_t p1 = std::min(p0 + kc, k);
        micro::pack_b_slice(b.data() + p0 * n, n, p1 - p0, n, pb.data());
        micro::macrokernel_block(m, n, p1 - p0, 1.0f,
                                 pa.data() + p0 * micro::kMR, k, pb.data(),
                                 p1 - p0, 0.0f, c.data(), n, blk > 0,
                                 blk + 1 == blocks, {});
      }
      ASSERT_TRUE(prop::bitwise_equal(c, reference))
          << "m=" << m << " k=" << k << " n=" << n << " kc=" << kc;
    }
  }
}

// gemm_raw must return bitwise-identical C under every pack strategy ×
// thread count — the pack-strategy axis of the determinism contract.
// Shapes cover the row split (shallow and k-blocked deep), the column
// split, and the serial cutoff.
TEST(Microkernel, PackStrategyIsBitwiseInvariant) {
  const prop::GemmCase cases[] = {{256, 64, 48},
                                  {16, 2048, 128},
                                  {24, 640, 2048},
                                  {5, 7, 9}};
  for (const auto& [m, k, n] : cases) {
    const auto a = prop::random_matrix(m, k, 61);
    const auto b = prop::random_matrix(k, n, 62);
    gsfl::common::set_global_threads(1);
    gsfl::tensor::set_pack_strategy(gsfl::tensor::PackStrategy::kUpfront);
    std::vector<float> reference(m * n);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                           reference.data());
    prop::for_each_pack_strategy([&](gsfl::tensor::PackStrategy strategy) {
      prop::for_each_thread_count([&](std::size_t threads) {
        std::vector<float> c(m * n);
        gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                               c.data());
        ASSERT_TRUE(prop::bitwise_equal(c, reference))
            << "m=" << m << " k=" << k << " n=" << n
            << " strategy=" << prop::pack_strategy_name(strategy)
            << " threads=" << threads;
      });
    });
    gsfl::tensor::set_pack_strategy(gsfl::tensor::PackStrategy::kAuto);
    gsfl::common::set_global_threads(0);
  }
}

// ---- masked packs -----------------------------------------------------------
// The *_mask variants must pack exactly the floats a materialized
// relu_mask() matrix holds: mask > 0 passes the element, anything else
// (zero, negative, -0.0f) packs +0.0f.

TEST(Microkernel, MaskedPacksMatchPackingAMaskedMatrix) {
  const std::size_t rows = 2 * micro::kMR + 3;
  const std::size_t k = micro::kKC + 29;
  const auto src = prop::random_matrix(rows, k, 1000);
  const auto mask = prop::random_matrix(rows, k, 1001);  // ~half negative
  std::vector<float> masked(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    masked[i] = mask[i] > 0.0f ? src[i] : 0.0f;
  }

  std::vector<float> expected(micro::packed_a_floats(rows, k));
  std::vector<float> actual(expected.size());
  micro::pack_a(masked.data(), k, rows, k, expected.data());
  micro::pack_a_mask(src.data(), mask.data(), k, rows, k, actual.data());
  EXPECT_TRUE(prop::bitwise_equal(actual, expected));

  const auto srct = prop::transposed(src, rows, k);
  const auto maskt = prop::transposed(mask, rows, k);
  const auto maskedt = prop::transposed(masked, rows, k);
  micro::pack_a_trans(maskedt.data(), rows, rows, k, expected.data());
  micro::pack_a_trans_mask(srct.data(), maskt.data(), rows, rows, k,
                           actual.data());
  EXPECT_TRUE(prop::bitwise_equal(actual, expected));

  const std::size_t cols = micro::kNR + 11;
  const auto bsrc = prop::random_matrix(k, cols, 1002);
  const auto bmask = prop::random_matrix(k, cols, 1003);
  std::vector<float> bmasked(bsrc.size());
  for (std::size_t i = 0; i < bsrc.size(); ++i) {
    bmasked[i] = bmask[i] > 0.0f ? bsrc[i] : 0.0f;
  }
  std::vector<float> bexpected(micro::packed_b_floats(k, cols));
  std::vector<float> bactual(bexpected.size());
  micro::pack_b(bmasked.data(), cols, k, cols, bexpected.data());
  micro::pack_b_mask(bsrc.data(), bmask.data(), cols, k, cols,
                     bactual.data());
  EXPECT_TRUE(prop::bitwise_equal(bactual, bexpected));
}

// The masked-A gemm_raw overload vs the unmasked GEMM on a materialized
// masked operand — bitwise, across pack strategies and thread counts, for
// both A orientations (the dense backward uses both: dW packs dyᵀ, dx
// packs dy).
TEST(Microkernel, MaskedGemmMatchesGemmOnMaskedOperand) {
  const std::size_t m = 16;
  const std::size_t k = micro::kKC + 77;
  const std::size_t n = 2 * micro::kNR + 9;
  const auto a = prop::random_matrix(m, k, 1100);
  const auto mask = prop::random_matrix(m, k, 1101);
  const auto b = prop::random_matrix(k, n, 1102);
  std::vector<float> masked(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    masked[i] = mask[i] > 0.0f ? a[i] : 0.0f;
  }
  gsfl::common::set_global_threads(1);
  std::vector<float> reference(m * n);
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, masked.data(), b.data(), 0.0f,
                         reference.data());
  const auto at = prop::transposed(a, m, k);
  const auto maskt = prop::transposed(mask, m, k);
  prop::for_each_pack_strategy([&](gsfl::tensor::PackStrategy strategy) {
    prop::for_each_thread_count([&](std::size_t threads) {
      std::vector<float> c(m * n);
      gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo,
                             mask.data(), b.data(), Trans::kNo, 0.0f,
                             c.data(), {});
      ASSERT_TRUE(prop::bitwise_equal(c, reference))
          << "no-trans strategy=" << prop::pack_strategy_name(strategy)
          << " threads=" << threads;
      gsfl::tensor::gemm_raw(m, k, n, 1.0f, at.data(), Trans::kYes,
                             maskt.data(), b.data(), Trans::kNo, 0.0f,
                             c.data(), {});
      ASSERT_TRUE(prop::bitwise_equal(c, reference))
          << "trans strategy=" << prop::pack_strategy_name(strategy)
          << " threads=" << threads;
    });
  });
}

// ---- k-block invariance -----------------------------------------------------
// The macrokernel must produce bitwise-identical C for *every* k-block
// length: blocks park raw per-element partials in C and resume them, so the
// per-element fold is the same ascending-k sequence whether the sweep runs
// in 1-step slices, the production kKC, or a single block.

class KBlocking : public ::testing::Test {
 protected:
  // Drive the macrokernel directly (serial, pre-packed panels) so the sweep
  // isolates the blocking logic from the parallel split.
  static std::vector<float> run(std::size_t m, std::size_t k, std::size_t n,
                                const std::vector<float>& a,
                                const std::vector<float>& b,
                                const micro::Epilogue& ep,
                                std::size_t kc_block) {
    std::vector<float> pa(micro::packed_a_floats(m, k));
    std::vector<float> pb(micro::packed_b_floats(k, n));
    micro::pack_a(a.data(), k, m, k, pa.data());
    micro::pack_b(b.data(), n, k, n, pb.data());
    std::vector<float> c(m * n, -9.0f);
    micro::macrokernel(m, n, k, 1.0f, pa.data(), pb.data(), 0.0f, c.data(),
                       n, ep, kc_block);
    return c;
  }
};

TEST_F(KBlocking, SweepIsBitwiseInvariantInBlockLength) {
  const prop::GemmCase cases[] = {
      {2 * micro::kMR + 1, micro::kKC + 13, micro::kNR + 5},
      {micro::kMR, 3 * micro::kKC, 2 * micro::kNR},
      {5, 777, 2 * micro::kNR + 3},
  };
  for (const auto& [m, k, n] : cases) {
    const auto a = prop::random_matrix(m, k, 500 + k);
    const auto b = prop::random_matrix(k, n, 600 + k);
    const auto reference = prop::naive_gemm(m, k, n, a, b);
    for (const std::size_t kc : prop::kc_sweep(k)) {
      const auto c = run(m, k, n, a, b, {}, kc);
      ASSERT_TRUE(prop::bitwise_equal(c, reference))
          << "m=" << m << " k=" << k << " n=" << n << " kc=" << kc;
    }
  }
}

TEST_F(KBlocking, EpiloguesApplyOnlyOnTheFinalBlock) {
  const std::size_t m = micro::kMR + 2;
  const std::size_t k = micro::kKC + 91;  // two blocks at the default KC
  const std::size_t n = micro::kNR + 7;
  const auto a = prop::random_matrix(m, k, 71);
  const auto b = prop::random_matrix(k, n, 72);
  const auto bias = prop::random_matrix(1, m, 73);
  const auto product = prop::naive_gemm(m, k, n, a, b);

  const micro::Epilogue ep{.kind = micro::Epilogue::Kind::kBiasRelu,
                           .per_row = true,
                           .bias = bias.data()};
  for (const std::size_t kc : prop::kc_sweep(k)) {
    const auto c = run(m, k, n, a, b, ep, kc);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        float expected = product[i * n + j] + bias[i];
        if (!(expected > 0.0f)) expected = 0.0f;
        ASSERT_EQ(c[i * n + j], expected)
            << "i=" << i << " j=" << j << " kc=" << kc;
      }
    }
  }
}

// ---- fused epilogues through gemm_raw ---------------------------------------
// The fused write-back must be bitwise identical to the unfused GEMM
// followed by a bias loop and a relu pass — at every thread count, under
// both split axes, with the bias on either C axis.

class EpilogueFusion : public ::testing::Test {
 protected:
  void TearDown() override { gsfl::common::set_global_threads(0); }
};

TEST_F(EpilogueFusion, FusedBiasReluMatchesUnfusedAtEveryThreadCount) {
  // Row-heavy (splits rows) and column-heavy (splits columns), both beyond
  // the serial cutoff; plus a tiny serial case.
  const prop::GemmCase cases[] = {{256, 64, 48}, {24, 64, 2048}, {5, 7, 9}};
  for (const auto& [m, k, n] : cases) {
    const auto a = prop::random_matrix(m, k, 81);
    const auto b = prop::random_matrix(k, n, 82);
    const auto row_bias = prop::random_matrix(1, m, 83);
    const auto col_bias = prop::random_matrix(1, n, 84);

    // Unfused reference: GEMM, then bias, then relu — serial.
    gsfl::common::set_global_threads(1);
    std::vector<float> unfused(m * n);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                           unfused.data());
    auto with_bias = [&](bool per_row, bool relu) {
      std::vector<float> expected = unfused;
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          float v = expected[i * n + j];
          v += per_row ? row_bias[i] : col_bias[j];
          if (relu && !(v > 0.0f)) v = 0.0f;
          expected[i * n + j] = v;
        }
      }
      return expected;
    };

    for (const bool per_row : {true, false}) {
      const micro::Epilogue bias_ep{
          .kind = micro::Epilogue::Kind::kBias,
          .per_row = per_row,
          .bias = per_row ? row_bias.data() : col_bias.data()};
      const micro::Epilogue relu_ep{
          .kind = micro::Epilogue::Kind::kBiasRelu,
          .per_row = per_row,
          .bias = per_row ? row_bias.data() : col_bias.data()};
      const auto expect_bias = with_bias(per_row, false);
      const auto expect_relu = with_bias(per_row, true);
      prop::for_each_thread_count([&](std::size_t threads) {
        std::vector<float> c(m * n);
        gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo, b.data(),
                               Trans::kNo, 0.0f, c.data(), bias_ep);
        ASSERT_TRUE(prop::bitwise_equal(c, expect_bias))
            << "bias per_row=" << per_row << " m=" << m << " n=" << n
            << " threads=" << threads;
        gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo, b.data(),
                               Trans::kNo, 0.0f, c.data(), relu_ep);
        ASSERT_TRUE(prop::bitwise_equal(c, expect_relu))
            << "bias+relu per_row=" << per_row << " m=" << m << " n=" << n
            << " threads=" << threads;
      });
    }
  }
}

// A GEMM big enough to split across lanes (both by rows and by columns, one
// deep enough to k-block) must return bitwise-identical C for any thread
// count.
class MicrokernelThreads : public ::testing::Test {
 protected:
  void TearDown() override { gsfl::common::set_global_threads(0); }
};

TEST_F(MicrokernelThreads, GemmIsThreadCountInvariant) {
  // Row-heavy (splits rows) and column-heavy (splits columns); the second
  // case k-blocks (k = 2048 > kKC).
  const prop::GemmCase cases[] = {{256, 64, 48}, {24, 64, 2048},
                                  {16, 2048, 128}};
  for (const auto& [m, k, n] : cases) {
    const auto a = prop::random_matrix(m, k, 51);
    const auto b = prop::random_matrix(k, n, 52);
    gsfl::common::set_global_threads(1);
    std::vector<float> serial(m * n);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                           serial.data());
    prop::for_each_thread_count([&](std::size_t threads) {
      std::vector<float> wide(m * n);
      gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                             wide.data());
      ASSERT_TRUE(prop::bitwise_equal(wide, serial))
          << "m=" << m << " n=" << n << " threads=" << threads;
    });
  }
}

}  // namespace
