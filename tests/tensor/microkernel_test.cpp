// The microkernel's determinism pitch is that every C element is produced
// by one accumulator folded over k in ascending order — exactly the naive
// triple loop. These tests hold it to that *bitwise*, across every edge
// geometry a panel can end in, and across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/microkernel.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using gsfl::tensor::Trans;
namespace micro = gsfl::tensor::micro;

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(rows * cols);
  for (auto& x : data) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return data;
}

/// One reference multiply-add step. On FMA targets the compiler contracts
/// the kernel's `acc += a·b` into fused multiply-adds, so the reference
/// must fold the same way — explicitly, so no auto-vectorized tail of this
/// loop is left uncontracted. Without FMA hardware the kernel rounds the
/// product and sum separately, and so does the reference. (A build forcing
/// -ffp-contract=off on FMA hardware would need the plain variant.)
float mac_step(float a, float b, float acc) {
#if defined(__FMA__)
  return std::fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// Naive triple loop: acc folded over k ascending, then stored — the
/// arithmetic sequence the microkernel must reproduce exactly.
std::vector<float> naive(std::size_t m, std::size_t k, std::size_t n,
                         const std::vector<float>& a,
                         const std::vector<float>& b) {
  std::vector<float> c(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc = mac_step(a[i * k + p], b[p * n + j], acc);
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

std::vector<float> transposed(const std::vector<float>& src, std::size_t rows,
                              std::size_t cols) {
  std::vector<float> dst(src.size());
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) dst[j * rows + i] = src[i * cols + j];
  }
  return dst;
}

TEST(Microkernel, BlockConstantsAreSane) {
  static_assert(micro::kMR >= 4);
  static_assert(micro::kNR >= 8 && micro::kNR % micro::kSimdWidth == 0);
  EXPECT_EQ(micro::round_up(1, micro::kMR), micro::kMR);
  EXPECT_EQ(micro::packed_a_floats(micro::kMR + 1, 3),
            2 * micro::kMR * 3);
  EXPECT_EQ(micro::packed_b_floats(3, micro::kNR), micro::kNR * 3);
}

TEST(Microkernel, PackAPadsTailRowsWithZeros) {
  const std::size_t rows = micro::kMR + 2;  // one full strip + a 2-row tail
  const std::size_t k = 5;
  const auto a = random_matrix(rows, k, 11);
  std::vector<float> pa(micro::packed_a_floats(rows, k), -1.0f);
  micro::pack_a(a.data(), k, rows, k, pa.data());
  // Strip 0, k step p holds rows 0..MR-1 of column p.
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < micro::kMR; ++i) {
      EXPECT_EQ(pa[p * micro::kMR + i], a[i * k + p]);
    }
  }
  // Strip 1 holds the 2 tail rows then zero padding.
  const float* strip1 = pa.data() + micro::kMR * k;
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < micro::kMR; ++i) {
      const float expected =
          i < 2 ? a[(micro::kMR + i) * k + p] : 0.0f;
      EXPECT_EQ(strip1[p * micro::kMR + i], expected);
    }
  }
}

TEST(Microkernel, PackBPadsTailColumnsWithZeros) {
  const std::size_t k = 4;
  const std::size_t cols = micro::kNR + 3;
  const auto b = random_matrix(k, cols, 12);
  std::vector<float> pb(micro::packed_b_floats(k, cols), -1.0f);
  micro::pack_b(b.data(), cols, k, cols, pb.data());
  const float* strip1 = pb.data() + micro::kNR * k;
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < micro::kNR; ++j) {
      EXPECT_EQ(pb[p * micro::kNR + j], b[p * cols + j]);
      const float expected = j < 3 ? b[p * cols + micro::kNR + j] : 0.0f;
      EXPECT_EQ(strip1[p * micro::kNR + j], expected);
    }
  }
}

TEST(Microkernel, TransposedPacksMatchUntransposedOnes) {
  const std::size_t rows = 2 * micro::kMR + 3;
  const std::size_t cols = micro::kNR + 5;
  const std::size_t k = 7;
  const auto a = random_matrix(rows, k, 13);
  const auto at = transposed(a, rows, k);
  std::vector<float> pa(micro::packed_a_floats(rows, k));
  std::vector<float> pat(pa.size());
  micro::pack_a(a.data(), k, rows, k, pa.data());
  micro::pack_a_trans(at.data(), rows, rows, k, pat.data());
  EXPECT_EQ(pa, pat);

  const auto b = random_matrix(k, cols, 14);
  const auto bt = transposed(b, k, cols);
  std::vector<float> pb(micro::packed_b_floats(k, cols));
  std::vector<float> pbt(pb.size());
  micro::pack_b(b.data(), cols, k, cols, pb.data());
  micro::pack_b_trans(bt.data(), k, k, cols, pbt.data());
  EXPECT_EQ(pb, pbt);
}

// Every m, n remainder a panel can end in — [1, 2·MR) × [1, 2·NR) — with k
// remainders on both sides of the register block, checked bitwise against
// the naive triple loop.
TEST(Microkernel, EdgeGeometrySweepIsBitwiseExact) {
  const std::size_t ks[] = {1, 2, micro::kMR - 1, micro::kMR,
                            2 * micro::kMR + 1, 37};
  for (std::size_t m = 1; m < 2 * micro::kMR; ++m) {
    for (std::size_t n = 1; n < 2 * micro::kNR; ++n) {
      for (const std::size_t k : ks) {
        const auto a = random_matrix(m, k, 100 + m * 131 + n * 17 + k);
        const auto b = random_matrix(k, n, 200 + m + n * 29 + k * 7);
        const auto reference = naive(m, k, n, a, b);
        std::vector<float> c(m * n, -7.0f);
        gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                               c.data());
        ASSERT_EQ(c, reference) << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

// Interior geometry (several full strips plus remainders, k past typical
// unroll factors) stays bitwise-exact too: blocking must never reassociate
// the k fold.
TEST(Microkernel, LargeShapesAreBitwiseExact) {
  struct Case {
    std::size_t m, k, n;
  };
  const Case cases[] = {
      {4 * micro::kMR + 1, 129, 3 * micro::kNR + 5},
      {16, 27, 256},   // conv1-like
      {32, 144, 196},  // conv2-like
  };
  for (const auto& [m, k, n] : cases) {
    const auto a = random_matrix(m, k, 300 + m);
    const auto b = random_matrix(k, n, 400 + n);
    const auto reference = naive(m, k, n, a, b);
    std::vector<float> c(m * n);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    ASSERT_EQ(c, reference) << "m=" << m << " n=" << n << " k=" << k;
  }
}

// The trans variants must equal packing a materialized transpose — bitwise,
// since packing is the only place the layouts differ.
TEST(Microkernel, TransVariantsAreBitwiseExact) {
  const std::size_t m = micro::kMR + 2;
  const std::size_t k = 33;
  const std::size_t n = micro::kNR + 9;
  const auto a = random_matrix(m, k, 21);
  const auto b = random_matrix(k, n, 22);
  const auto at = transposed(a, m, k);
  const auto bt = transposed(b, k, n);
  const auto reference = naive(m, k, n, a, b);

  std::vector<float> c(m * n);
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, at.data(), Trans::kYes, b.data(),
                         Trans::kNo, 0.0f, c.data());
  EXPECT_EQ(c, reference);
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo, bt.data(),
                         Trans::kYes, 0.0f, c.data());
  EXPECT_EQ(c, reference);
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, at.data(), Trans::kYes, bt.data(),
                         Trans::kYes, 0.0f, c.data());
  EXPECT_EQ(c, reference);
}

TEST(Microkernel, BetaAccumulatesAndKZeroScales) {
  const std::size_t m = 3;
  const std::size_t n = micro::kNR + 1;
  const auto a = random_matrix(m, 5, 31);
  const auto b = random_matrix(5, n, 32);
  const auto product = naive(m, 5, n, a, b);
  std::vector<float> c(m * n, 2.0f);
  gsfl::tensor::gemm_raw(m, 5, n, 1.0f, a.data(), b.data(), 1.0f, c.data());
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(c[i], product[i] + 2.0f * 1.0f);
  }
  // k == 0: the product term vanishes, C = beta·C.
  gsfl::tensor::gemm_raw(m, 0, n, 1.0f, a.data(), b.data(), 0.5f, c.data());
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(c[i], 0.5f * (product[i] + 2.0f));
  }
}

// A GEMM big enough to split across lanes (both by rows and by columns)
// must return bitwise-identical C for any thread count.
class MicrokernelThreads : public ::testing::Test {
 protected:
  void TearDown() override { gsfl::common::set_global_threads(0); }
};

TEST_F(MicrokernelThreads, GemmIsThreadCountInvariant) {
  struct Case {
    std::size_t m, k, n;
  };
  // Row-heavy (splits rows) and column-heavy (splits columns).
  const Case cases[] = {{256, 64, 48}, {24, 64, 2048}};
  for (const auto& [m, k, n] : cases) {
    const auto a = random_matrix(m, k, 51);
    const auto b = random_matrix(k, n, 52);
    std::vector<float> serial(m * n);
    std::vector<float> wide(m * n);
    gsfl::common::set_global_threads(1);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                           serial.data());
    gsfl::common::set_global_threads(8);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                           wide.data());
    ASSERT_EQ(serial, wide) << "m=" << m << " n=" << n;
  }
}

}  // namespace
