// The int8 quantized GEMM and the quantized wire codec share one rounding
// rule (micro::q8::scale_for / quantize, nearest-even). These tests pin that
// rule numerically, hold the kInt8 GEMM bitwise to an exact integer
// reference across thread counts and pack strategies (exact int32
// accumulation makes the fold order-invariant, so the contract here is
// equality, not tolerance), and hold the GSQT codec to an exact
// fake_quantize round-trip with loud, offset-bearing failures on malformed
// input.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/microkernel.hpp"
#include "gsfl/tensor/quantize.hpp"
#include "gsfl/tensor/serialize.hpp"
#include "support/property.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::fake_quantize;
using gsfl::tensor::GemmPrecision;
using gsfl::tensor::QuantizerConfig;
using gsfl::tensor::quantized_wire_bytes;
using gsfl::tensor::quantizer_qmax;
using gsfl::tensor::read_quantized;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using gsfl::tensor::Trans;
using gsfl::tensor::write_quantized;
namespace micro = gsfl::tensor::micro;
namespace q8 = micro::q8;
namespace prop = gsfl::test::prop;

// ---- rounding rule ---------------------------------------------------------

TEST(Quantize, RoundsHalfToEven) {
  // inv_scale = 1 makes the argument the value being rounded: ties must go
  // to the even integer (FE_TONEAREST nearbyint), not away from zero.
  EXPECT_EQ(q8::quantize(0.5f, 1.0f, 127), 0);
  EXPECT_EQ(q8::quantize(1.5f, 1.0f, 127), 2);
  EXPECT_EQ(q8::quantize(2.5f, 1.0f, 127), 2);
  EXPECT_EQ(q8::quantize(3.5f, 1.0f, 127), 4);
  EXPECT_EQ(q8::quantize(-0.5f, 1.0f, 127), 0);
  EXPECT_EQ(q8::quantize(-1.5f, 1.0f, 127), -2);
  EXPECT_EQ(q8::quantize(-2.5f, 1.0f, 127), -2);
}

TEST(Quantize, ClampsToSymmetricRange) {
  EXPECT_EQ(q8::quantize(1000.0f, 1.0f, 127), 127);
  EXPECT_EQ(q8::quantize(-1000.0f, 1.0f, 127), -127);
  EXPECT_EQ(q8::quantize(1000.0f, 1.0f, 7), 7);
  EXPECT_EQ(q8::quantize(-1000.0f, 1.0f, 7), -7);
}

TEST(Quantize, ScaleForZeroInputIsOne) {
  // All-zero groups must not divide by zero; scale 1 dequantizes 0 → 0.
  EXPECT_FLOAT_EQ(q8::scale_for(0.0f, 127), 1.0f);
  EXPECT_FLOAT_EQ(q8::scale_for(254.0f, 127), 2.0f);
}

TEST(Quantize, QmaxFollowsBitWidth) {
  EXPECT_EQ(quantizer_qmax(8), 127);
  EXPECT_EQ(quantizer_qmax(4), 7);
  EXPECT_EQ(quantizer_qmax(2), 1);
  EXPECT_THROW((void)quantizer_qmax(1), std::invalid_argument);
  EXPECT_THROW((void)quantizer_qmax(9), std::invalid_argument);
}

// ---- int8 GEMM vs exact integer reference ----------------------------------

void run_q8(std::size_t m, std::size_t k, std::size_t n,
            const std::vector<float>& a, const std::vector<float>& b,
            std::vector<float>& c) {
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo, b.data(),
                         Trans::kNo, 0.0f, c.data(), micro::Epilogue{},
                         GemmPrecision::kInt8);
}

TEST(QuantizedGemm, EdgeGeometriesMatchIntegerReferenceBitwise) {
  for (const auto& [m, k, n] : prop::edge_gemm_cases()) {
    const auto a = prop::random_matrix(m, k, 100 + m * 7 + k);
    const auto b = prop::random_matrix(k, n, 200 + n * 3 + k);
    const auto expected = prop::naive_gemm_q8(m, k, n, a, b);
    std::vector<float> c(m * n, -2.0f);
    run_q8(m, k, n, a, b, c);
    ASSERT_TRUE(prop::bitwise_equal(c, expected))
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(QuantizedGemm, LargeShapesMatchIntegerReferenceBitwise) {
  // dense1-like k=2048 spans many f32 KC blocks; the int8 path packs full-k
  // upfront, so exactness here shows there is no k-blocking reassociation
  // to worry about (int32 accumulation is exact regardless).
  const prop::GemmCase cases[] = {
      {4 * micro::kMR + 1, 129, 3 * micro::kNR + 5},
      {16, 2048, 128},
      {100, 1, 100},
  };
  for (const auto& [m, k, n] : cases) {
    const auto a = prop::random_matrix(m, k, 300 + m);
    const auto b = prop::random_matrix(k, n, 400 + n);
    const auto expected = prop::naive_gemm_q8(m, k, n, a, b);
    std::vector<float> c(m * n);
    run_q8(m, k, n, a, b, c);
    ASSERT_TRUE(prop::bitwise_equal(c, expected))
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(QuantizedGemm, TransposedOperandsMatchUntransposedBitwise) {
  const std::size_t m = micro::kMR + 3;
  const std::size_t k = 67;
  const std::size_t n = micro::kNR + 9;
  const auto a = prop::random_matrix(m, k, 500);
  const auto b = prop::random_matrix(k, n, 501);
  const auto at = prop::transposed(a, m, k);  // (k × m) row-major
  const auto bt = prop::transposed(b, k, n);  // (n × k) row-major
  const auto expected = prop::naive_gemm_q8(m, k, n, a, b);

  const struct {
    const float* pa;
    Trans ta;
    const float* pb;
    Trans tb;
  } variants[] = {
      {a.data(), Trans::kNo, bt.data(), Trans::kYes},
      {at.data(), Trans::kYes, b.data(), Trans::kNo},
      {at.data(), Trans::kYes, bt.data(), Trans::kYes},
  };
  for (const auto& v : variants) {
    std::vector<float> c(m * n, -1.0f);
    gsfl::tensor::gemm_raw(m, k, n, 1.0f, v.pa, v.ta, v.pb, v.tb, 0.0f,
                           c.data(), micro::Epilogue{},
                           GemmPrecision::kInt8);
    ASSERT_TRUE(prop::bitwise_equal(c, expected));
  }
}

TEST(QuantizedGemm, ThreadAndPackStrategyInvariantBitwise) {
  // Both the row-parallel (m large) and column-parallel (n large) splits:
  // per-logical-row/-column scales mean every lane quantizes identically no
  // matter which panel it owns, and exact int32 accumulation means the
  // fold cannot reassociate. The pack-strategy axis is a no-op for int8
  // (full-k upfront pack) — swept anyway to pin that it stays one.
  const prop::GemmCase cases[] = {
      {6 * micro::kMR + 1, 128, micro::kNR + 3},   // rows split
      {micro::kMR + 2, 96, 5 * micro::kNR + 7},    // cols split
  };
  for (const auto& [m, k, n] : cases) {
    const auto a = prop::random_matrix(m, k, 600 + m);
    const auto b = prop::random_matrix(k, n, 700 + n);
    const auto expected = prop::naive_gemm_q8(m, k, n, a, b);
    prop::for_each_thread_count([&](std::size_t threads) {
      prop::for_each_pack_strategy([&](gsfl::tensor::PackStrategy strategy) {
        std::vector<float> c(m * n, 9.0f);
        run_q8(m, k, n, a, b, c);
        ASSERT_TRUE(prop::bitwise_equal(c, expected))
            << "threads=" << threads
            << " strategy=" << prop::pack_strategy_name(strategy)
            << " m=" << m << " n=" << n;
      });
    });
  }
}

TEST(QuantizedGemm, BiasReluEpilogueMatchesUnfusedSequence) {
  const std::size_t m = 2 * micro::kMR + 1;
  const std::size_t k = 53;
  const std::size_t n = micro::kNR + 5;
  const auto a = prop::random_matrix(m, k, 800);
  const auto b = prop::random_matrix(k, n, 801);
  const auto bias = prop::random_matrix(1, m, 802);
  auto expected = prop::naive_gemm_q8(m, k, n, a, b);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float& v = expected[i * n + j];
      v = std::max(v + bias[i], 0.0f);
    }
  }
  micro::Epilogue ep;
  ep.kind = micro::Epilogue::Kind::kBiasRelu;
  ep.per_row = true;
  ep.bias = bias.data();
  std::vector<float> c(m * n);
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo, b.data(),
                         Trans::kNo, 0.0f, c.data(), ep,
                         GemmPrecision::kInt8);
  ASSERT_TRUE(prop::bitwise_equal(c, expected));
}

TEST(QuantizedGemm, F32PrecisionSelectsTheFloatPath) {
  const std::size_t m = 5;
  const std::size_t k = 17;
  const std::size_t n = micro::kNR;
  const auto a = prop::random_matrix(m, k, 900);
  const auto b = prop::random_matrix(k, n, 901);
  const auto expected = prop::naive_gemm(m, k, n, a, b);
  std::vector<float> c(m * n);
  gsfl::tensor::gemm_raw(m, k, n, 1.0f, a.data(), Trans::kNo, b.data(),
                         Trans::kNo, 0.0f, c.data(), micro::Epilogue{},
                         GemmPrecision::kF32);
  ASSERT_TRUE(prop::bitwise_equal(c, expected));
}

TEST(QuantizedGemm, DegenerateDimensionsAreHandled) {
  // m == 0 / n == 0: no work, no crash. k == 0: C scaled by beta only.
  std::vector<float> c = {3.0f, 5.0f};
  gsfl::tensor::gemm_raw(0, 4, 2, 1.0f, nullptr, Trans::kNo, nullptr,
                         Trans::kNo, 0.0f, c.data(), micro::Epilogue{},
                         GemmPrecision::kInt8);
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  gsfl::tensor::gemm_raw(1, 0, 2, 1.0f, nullptr, Trans::kNo, nullptr,
                         Trans::kNo, 0.5f, c.data(), micro::Epilogue{},
                         GemmPrecision::kInt8);
  EXPECT_FLOAT_EQ(c[0], 1.5f);
  EXPECT_FLOAT_EQ(c[1], 2.5f);
}

TEST(QuantizedGemm, EightBitErrorIsSmallRelativeToF32) {
  // Not a determinism property — a sanity bound that 8-bit quantization of
  // [-1, 1) operands stays within a small relative error of the f32 result.
  const std::size_t m = 16;
  const std::size_t k = 256;
  const std::size_t n = 32;
  const auto a = prop::random_matrix(m, k, 1000);
  const auto b = prop::random_matrix(k, n, 1001);
  const auto exact = prop::naive_gemm(m, k, n, a, b);
  std::vector<float> c(m * n);
  run_q8(m, k, n, a, b, c);
  float max_abs = 1e-6f;
  for (const float v : exact) max_abs = std::max(max_abs, std::fabs(v));
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], exact[i], 0.02f * max_abs) << "flat index " << i;
  }
}

// ---- fake_quantize ---------------------------------------------------------

TEST(FakeQuantize, InactiveConfigIsIdentity) {
  Rng rng(1);
  auto t = Tensor::normal(Shape{3, 5}, rng);
  const Tensor original = t;
  fake_quantize(t, QuantizerConfig{});
  EXPECT_TRUE(prop::bitwise_equal(t, original));
}

TEST(FakeQuantize, ZeroTensorStaysZero) {
  auto t = Tensor(Shape{4, 4});
  fake_quantize(t, {.bits = 8, .per_channel = true});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(FakeQuantize, ValuesLandOnTheQuantizedGrid) {
  Rng rng(2);
  auto t = Tensor::uniform(Shape{2, 64}, rng, -3, 3);
  const Tensor original = t;
  const QuantizerConfig config{.bits = 4, .per_channel = true};
  fake_quantize(t, config);
  const int qmax = quantizer_qmax(config.bits);
  // Per-channel: each row uses its own scale; every value must be
  // scale·q for an integer q in [-qmax, qmax].
  for (std::size_t g = 0; g < 2; ++g) {
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < 64; ++i) {
      max_abs = std::max(max_abs, std::fabs(original.at(g * 64 + i)));
    }
    const float scale = q8::scale_for(max_abs, qmax);
    for (std::size_t i = 0; i < 64; ++i) {
      const float v = t.at(g * 64 + i);
      const float q = v / scale;
      EXPECT_EQ(q, std::nearbyintf(q));
      EXPECT_LE(std::fabs(q), static_cast<float>(qmax));
    }
  }
}

// ---- wire codec ------------------------------------------------------------

TEST(QuantizedCodec, RoundTripIsExactlyFakeQuantize) {
  Rng rng(3);
  prop::for_each_quantizer([&](const QuantizerConfig& config) {
    const auto original = Tensor::normal(Shape{4, 3, 5}, rng);
    Tensor expected = original;
    fake_quantize(expected, config);
    std::stringstream buffer;
    write_quantized(buffer, original, config);
    const auto restored = read_quantized(buffer);
    ASSERT_TRUE(prop::bitwise_equal(restored, expected))
        << "bits=" << config.bits << " per_channel=" << config.per_channel;
  });
}

TEST(QuantizedCodec, WireBytesMatchesBytesWritten) {
  Rng rng(4);
  prop::for_each_quantizer([&](const QuantizerConfig& config) {
    const auto t = Tensor::uniform(Shape{3, 7}, rng);
    std::stringstream buffer;
    write_quantized(buffer, t, config);
    EXPECT_EQ(buffer.str().size(), quantized_wire_bytes(t.shape(), config))
        << "bits=" << config.bits << " per_channel=" << config.per_channel;
  });
}

TEST(QuantizedCodec, CompressesAgainstF32Serialization) {
  const Shape shape{16, 128};
  const auto f32_bytes = 4 + 4 + 2 * 8 + shape.numel() * sizeof(float);
  const QuantizerConfig eight{.bits = 8, .per_channel = false};
  const QuantizerConfig two{.bits = 2, .per_channel = false};
  EXPECT_LT(quantized_wire_bytes(shape, eight), f32_bytes / 3);
  EXPECT_LT(quantized_wire_bytes(shape, two), f32_bytes / 12);
}

TEST(QuantizedCodec, InactiveConfigRejected) {
  Rng rng(5);
  const auto t = Tensor::uniform(Shape{2, 2}, rng);
  std::stringstream buffer;
  EXPECT_THROW(write_quantized(buffer, t, QuantizerConfig{}),
               std::invalid_argument);
  EXPECT_THROW((void)quantized_wire_bytes(t.shape(), QuantizerConfig{}),
               std::invalid_argument);
}

// Serialize a small tensor and return the raw bytes for corruption tests.
std::string quantized_bytes(const QuantizerConfig& config) {
  Rng rng(6);
  const auto t = Tensor::uniform(Shape{3, 4}, rng, -1, 1);
  std::stringstream buffer;
  write_quantized(buffer, t, config);
  return buffer.str();
}

// Expect read_quantized to throw a runtime_error whose message contains
// every listed fragment — the offset-context contract.
void expect_read_failure(const std::string& bytes,
                         const std::vector<std::string>& fragments) {
  std::stringstream buffer(bytes);
  try {
    (void)read_quantized(buffer);
    FAIL() << "expected read_quantized to throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    for (const auto& fragment : fragments) {
      EXPECT_NE(message.find(fragment), std::string::npos)
          << "message \"" << message << "\" lacks \"" << fragment << "\"";
    }
  }
}

TEST(QuantizedCodec, BadMagicRejected) {
  auto bytes = quantized_bytes({.bits = 8, .per_channel = false});
  bytes[0] = 'X';
  expect_read_failure(bytes, {"bad magic"});
}

TEST(QuantizedCodec, BitsOutsideRangeRejectedWithOffset) {
  auto bytes = quantized_bytes({.bits = 8, .per_channel = false});
  // magic(4) + rank(4) + dims(2·8) = 24 → the bits byte.
  const std::size_t bits_offset = 24;
  bytes[bits_offset] = 9;
  expect_read_failure(bytes,
                      {"bits 9 outside [2, 8]", "at offset 24"});
  bytes[bits_offset] = 1;
  expect_read_failure(bytes,
                      {"bits 1 outside [2, 8]", "at offset 24"});
}

TEST(QuantizedCodec, TruncatedScaleTableRejectedWithOffset) {
  const auto bytes = quantized_bytes({.bits = 8, .per_channel = true});
  // Header through scale count: 24 + bits(1) + flag(1) + count(4) = 30,
  // then 3 per-row scales. Cut inside the second scale entry.
  expect_read_failure(bytes.substr(0, 30 + 4 + 2),
                      {"truncated read", "scale", "offset 34"});
}

TEST(QuantizedCodec, ScaleCountMismatchRejectedWithOffset) {
  auto bytes = quantized_bytes({.bits = 8, .per_channel = true});
  // Patch the u32 scale count at offset 26 (after bits + flag) to a value
  // that cannot match shape (3, 4).
  const std::uint32_t wrong = 7;
  std::memcpy(bytes.data() + 26, &wrong, sizeof wrong);
  expect_read_failure(
      bytes, {"scale table of 7 entries", "expected 3", "at offset 26"});
}

TEST(QuantizedCodec, TruncatedPayloadRejectedWithContext) {
  const auto bytes = quantized_bytes({.bits = 4, .per_channel = false});
  expect_read_failure(bytes.substr(0, bytes.size() - 2),
                      {"truncated read", "payload", "[3, 4]"});
}

TEST(QuantizedCodec, NonPositiveScaleRejectedWithOffset) {
  auto bytes = quantized_bytes({.bits = 8, .per_channel = false});
  const float bad = -1.0f;
  std::memcpy(bytes.data() + 30, &bad, sizeof bad);  // the single scale
  expect_read_failure(bytes, {"bad scale", "at offset 30"});
}

}  // namespace
