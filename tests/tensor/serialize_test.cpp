#include <gtest/gtest.h>
#include <sstream>

#include "gsfl/common/rng.hpp"
#include "gsfl/tensor/serialize.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::read_tensor;
using gsfl::tensor::serialized_size;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using gsfl::tensor::write_tensor;

TEST(Serialize, RoundTripPreservesExactBits) {
  Rng rng(1);
  const auto original = Tensor::normal(Shape{3, 4, 5}, rng);
  std::stringstream buffer;
  write_tensor(buffer, original);
  const auto restored = read_tensor(buffer);
  EXPECT_EQ(original, restored);
}

TEST(Serialize, RoundTripScalarAndVector) {
  std::stringstream buffer;
  write_tensor(buffer, Tensor(Shape{1}, {42.0f}));
  write_tensor(buffer, Tensor::arange(7));
  EXPECT_FLOAT_EQ(read_tensor(buffer).at(0), 42.0f);
  const auto v = read_tensor(buffer);
  EXPECT_EQ(v.shape(), Shape({7}));
  EXPECT_FLOAT_EQ(v.at(6), 6.0f);
}

TEST(Serialize, SerializedSizeMatchesBytesWritten) {
  Rng rng(2);
  const auto t = Tensor::uniform(Shape{4, 9}, rng);
  std::stringstream buffer;
  write_tensor(buffer, t);
  EXPECT_EQ(buffer.str().size(), serialized_size(t));
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer("XXXXgarbage");
  EXPECT_THROW(read_tensor(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedHeaderRejected) {
  Rng rng(3);
  const auto t = Tensor::uniform(Shape{2, 2}, rng);
  std::stringstream buffer;
  write_tensor(buffer, t);
  const auto full = buffer.str();
  std::stringstream truncated(full.substr(0, 6));
  EXPECT_THROW(read_tensor(truncated), std::runtime_error);
}

TEST(Serialize, TruncatedDataRejected) {
  Rng rng(4);
  const auto t = Tensor::uniform(Shape{8, 8}, rng);
  std::stringstream buffer;
  write_tensor(buffer, t);
  const auto full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 10));
  EXPECT_THROW(read_tensor(truncated), std::runtime_error);
}

TEST(Serialize, ImplausibleShapeRejected) {
  // Hand-craft a header with rank 1 and a gigantic dimension.
  std::string payload = "GSFT";
  const std::uint32_t rank = 1;
  payload.append(reinterpret_cast<const char*>(&rank), sizeof(rank));
  const std::uint64_t dim = 1ULL << 60;
  payload.append(reinterpret_cast<const char*>(&dim), sizeof(dim));
  std::stringstream buffer(payload);
  EXPECT_THROW(read_tensor(buffer), std::runtime_error);
}

TEST(Serialize, MultipleTensorsStreamSequentially) {
  Rng rng(5);
  const auto a = Tensor::uniform(Shape{2, 3}, rng);
  const auto b = Tensor::uniform(Shape{5}, rng);
  std::stringstream buffer;
  write_tensor(buffer, a);
  write_tensor(buffer, b);
  EXPECT_EQ(read_tensor(buffer), a);
  EXPECT_EQ(read_tensor(buffer), b);
}

}  // namespace
