#include <gtest/gtest.h>

#include "gsfl/tensor/shape.hpp"

namespace {

using gsfl::tensor::Shape;

TEST(Shape, RankAndDims) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 4u);
}

TEST(Shape, NumelProducts) {
  EXPECT_EQ(Shape({2, 3, 4}).numel(), 24u);
  EXPECT_EQ(Shape({7}).numel(), 7u);
  EXPECT_EQ(Shape{}.numel(), 1u);  // scalar convention
}

TEST(Shape, RowMajorStrides) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12u);
  EXPECT_EQ(strides[1], 4u);
  EXPECT_EQ(strides[2], 1u);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, WithDim0) {
  const Shape s{8, 3, 16, 16};
  const auto t = s.with_dim0(4);
  EXPECT_EQ(t, Shape({4, 3, 16, 16}));
  EXPECT_EQ(s[0], 8u);  // original untouched
}

TEST(Shape, WithDim0OnRankZeroThrows) {
  EXPECT_THROW(Shape{}.with_dim0(1), std::invalid_argument);
}

TEST(Shape, OutOfRangeAxisThrows) {
  EXPECT_THROW((void)Shape({2, 3}).dim(2), std::invalid_argument);
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

}  // namespace
