#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/common/rng.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(Tensor, DefaultIsScalarZero) {
  const Tensor t;
  EXPECT_EQ(t.numel(), 1u);
  EXPECT_FLOAT_EQ(t.at(0), 0.0f);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 4});
  EXPECT_EQ(t.numel(), 12u);
  for (const float v : t.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Tensor, ExplicitDataValidated) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, FactoryHelpers) {
  const auto ones = Tensor::ones(Shape{5});
  for (const float v : ones.data()) EXPECT_FLOAT_EQ(v, 1.0f);
  const auto full = Tensor::full(Shape{2}, 2.5f);
  for (const float v : full.data()) EXPECT_FLOAT_EQ(v, 2.5f);
  const auto ar = Tensor::arange(4);
  EXPECT_FLOAT_EQ(ar.at(0), 0.0f);
  EXPECT_FLOAT_EQ(ar.at(3), 3.0f);
}

TEST(Tensor, RandomFactoriesRespectDistribution) {
  Rng rng(3);
  const auto u = Tensor::uniform(Shape{10000}, rng, -1.0f, 1.0f);
  EXPECT_GE(u.min(), -1.0f);
  EXPECT_LT(u.max(), 1.0f);
  EXPECT_NEAR(u.mean(), 0.0, 0.05);

  const auto n = Tensor::normal(Shape{10000}, rng, 2.0f, 0.5f);
  EXPECT_NEAR(n.mean(), 2.0, 0.05);
}

TEST(Tensor, At2And4Indexing) {
  Tensor t(Shape{2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(5), 7.0f);

  Tensor u(Shape{2, 3, 4, 5});
  u.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(u.at(((1 * 3 + 2) * 4 + 3) * 5 + 4), 9.0f);
}

TEST(Tensor, IndexBoundsChecked) {
  Tensor t(Shape{2, 2});
  EXPECT_THROW((void)t.at(4), std::invalid_argument);
  EXPECT_THROW((void)t.at2(2, 0), std::invalid_argument);
  EXPECT_THROW((void)t.at2(0, 2), std::invalid_argument);
  Tensor s(Shape{3});
  EXPECT_THROW((void)s.at2(0, 0), std::invalid_argument);  // wrong rank
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const auto r = t.reshape(Shape{3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_THROW((void)t.reshape(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, Slice0CopiesRows) {
  const Tensor t(Shape{4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  const auto s = t.slice0(1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.at2(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at2(1, 1), 5.0f);
  EXPECT_THROW((void)t.slice0(3, 5), std::invalid_argument);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {10, 20, 30});
  a.add_(b);
  EXPECT_FLOAT_EQ(a.at(2), 33.0f);
  a.sub_(b);
  EXPECT_FLOAT_EQ(a.at(2), 3.0f);
  a.mul_(b);
  EXPECT_FLOAT_EQ(a.at(1), 40.0f);
  a.scale_(0.5f);
  EXPECT_FLOAT_EQ(a.at(1), 20.0f);
  a.fill(7.0f);
  EXPECT_FLOAT_EQ(a.at(0), 7.0f);
}

TEST(Tensor, AxpyAccumulates) {
  Tensor y(Shape{2}, {1, 1});
  const Tensor x(Shape{2}, {2, 4});
  y.axpy_(0.5f, x);
  EXPECT_FLOAT_EQ(y.at(0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(1), 3.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  const Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.sub_(b), std::invalid_argument);
  EXPECT_THROW(a.mul_(b), std::invalid_argument);
  EXPECT_THROW(a.axpy_(1.0f, b), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  const Tensor t(Shape{2, 2}, {1, -2, 3, 4});
  EXPECT_DOUBLE_EQ(t.sum(), 6.0);
  EXPECT_DOUBLE_EQ(t.mean(), 1.5);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_DOUBLE_EQ(t.squared_norm(), 1.0 + 4.0 + 9.0 + 16.0);
}

TEST(Tensor, ArgmaxRow) {
  const Tensor t(Shape{2, 3}, {0.1f, 0.9f, 0.5f, 2.0f, -1.0f, 0.0f});
  EXPECT_EQ(t.argmax_row(0), 1u);
  EXPECT_EQ(t.argmax_row(1), 0u);
  EXPECT_THROW((void)t.argmax_row(2), std::invalid_argument);
}

TEST(Tensor, EqualityIsExact) {
  const Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b = a;
  EXPECT_EQ(a, b);
  b.at(1) = std::nextafterf(b.at(1), 3.0f);
  EXPECT_NE(a, b);
}

TEST(Tensor, MaxAbsDiff) {
  const Tensor a(Shape{2}, {1.0f, 5.0f});
  const Tensor b(Shape{2}, {1.5f, 3.0f});
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 2.0);
  const Tensor c(Shape{3});
  EXPECT_THROW((void)Tensor::max_abs_diff(a, c), std::invalid_argument);
}

TEST(Tensor, OutOfPlaceArithmetic) {
  const Tensor a(Shape{2}, {1, 2});
  const Tensor b(Shape{2}, {3, 5});
  EXPECT_FLOAT_EQ(gsfl::tensor::add(a, b).at(1), 7.0f);
  EXPECT_FLOAT_EQ(gsfl::tensor::sub(b, a).at(1), 3.0f);
  EXPECT_FLOAT_EQ(gsfl::tensor::mul(a, b).at(1), 10.0f);
  EXPECT_FLOAT_EQ(gsfl::tensor::scale(b, 2.0f).at(0), 6.0f);
}

TEST(Tensor, WeightedSumMatchesHandComputation) {
  const Tensor a(Shape{2}, {1, 2});
  const Tensor b(Shape{2}, {3, 4});
  const Tensor* tensors[] = {&a, &b};
  const double weights[] = {0.25, 0.75};
  const auto avg = gsfl::tensor::weighted_sum(tensors, weights);
  EXPECT_FLOAT_EQ(avg.at(0), 0.25f * 1 + 0.75f * 3);
  EXPECT_FLOAT_EQ(avg.at(1), 0.25f * 2 + 0.75f * 4);
}

TEST(Tensor, WeightedSumValidatesInput) {
  const Tensor a(Shape{2});
  const Tensor b(Shape{3});
  {
    const Tensor* tensors[] = {&a, &b};
    const double weights[] = {0.5, 0.5};
    EXPECT_THROW(gsfl::tensor::weighted_sum(tensors, weights),
                 std::invalid_argument);
  }
  {
    const Tensor* tensors[] = {&a};
    const double weights[] = {0.5, 0.5};
    EXPECT_THROW(gsfl::tensor::weighted_sum(tensors, weights),
                 std::invalid_argument);
  }
}

TEST(Tensor, SizeBytes) {
  EXPECT_EQ(Tensor(Shape{10, 10}).size_bytes(), 400u);
}

}  // namespace
