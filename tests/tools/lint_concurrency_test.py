#!/usr/bin/env python3
"""Self-test for tools/lint_concurrency.py.

Each fixture is a minimal C++ snippet that must trigger exactly the check it
names (and nothing else), plus clean exemplars lifted from the house style —
OrderedStateFold-style index folds, pre-drawn plan_epoch RNG — that must stay
silent, and suppression round-trips proving the annotation syntax works and
that malformed annotations are themselves findings.

Runs standalone (python3 tests/tools/lint_concurrency_test.py) and as the
lint_concurrency_selftest ctest.
"""

import os
import sys
import unittest

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools"))

import lint_concurrency as lint  # noqa: E402


def run(snippet, path="src/sample.cpp"):
    """Lint one snippet; returns the surviving findings."""
    findings = lint.lint_file_tokens(path, snippet)
    findings, bad = lint.apply_suppressions(snippet, path, findings)
    return findings + bad


def checks(findings):
    return sorted({f.check for f in findings})


class StripTest(unittest.TestCase):
    def test_strings_and_comments_blanked_offsets_preserved(self):
        text = 'int x; // rand()\nconst char* s = "rand()";\n/* now() */\n'
        code = lint.strip_comments_and_strings(text)
        self.assertEqual(len(code), len(text))
        self.assertNotIn("rand", code)
        self.assertNotIn("now", code)
        self.assertEqual(code.count("\n"), text.count("\n"))

    def test_raw_string_blanked(self):
        text = 'auto s = R"(rand() inside)";\n'
        self.assertNotIn("rand", lint.strip_comments_and_strings(text))


class D1SubmitTimeRngTest(unittest.TestCase):
    def test_random_device_in_parallel_lambda(self):
        findings = run("""
void f() {
  GSFL_EXPECT(n > 0);
  parallel_for(1, n, [&](std::size_t b, std::size_t e) {
    std::random_device rd;
    use(rd());
  });
}
""")
        self.assertEqual(checks(findings), ["submit-time-rng"])

    def test_clock_now_in_submitted_task(self):
        findings = run("""
void f() {
  GSFL_EXPECT(ok);
  lane.submit([&] {
    auto t = std::chrono::steady_clock::now();
    use(t);
  });
}
""")
        self.assertEqual(checks(findings), ["submit-time-rng"])

    def test_rng_constructed_inside_lambda(self):
        findings = run("""
void f() {
  GSFL_EXPECT(n > 0);
  parallel_map(n, [&](std::size_t c) {
    common::Rng rng(seed + c);
    return rng.next();
  });
}
""")
        self.assertIn("submit-time-rng", checks(findings))

    def test_predrawn_plan_epoch_is_clean(self):
        # The house idiom: randomness drawn on the submitting thread, in
        # round order, before the dispatch; the lambda reads plans[c].
        findings = run("""
void f() {
  std::vector<Plan> plans;
  for (std::size_t c = 0; c < n; ++c) plans.push_back(plan_epoch(rng_));
  GSFL_EXPECT(plans.size() == n);
  auto outcomes = parallel_map(n, [&](std::size_t c) {
    return run_epoch(plans[c]);
  });
}
""")
        self.assertEqual(findings, [])

    def test_index_owned_sampler_is_clean(self):
        # samplers_[c].next() draws from the index-owned stream — allowed.
        findings = run("""
void f() {
  GSFL_EXPECT(n > 0);
  auto outcomes = parallel_map(n, [&](std::size_t c) {
    Outcome out;
    out.batch = samplers_[c].next();
    return out;
  });
}
""")
        self.assertEqual(findings, [])


class D2OrderedWriteTest(unittest.TestCase):
    def test_mutating_data_on_ref_capture(self):
        findings = run("""
void f(Tensor& grad) {
  GSFL_EXPECT(n > 0);
  parallel_for(1, n, [&](std::size_t b, std::size_t e) {
    float* p = grad.data().data();
    p[b] = 1.0f;
  });
}
""")
        self.assertEqual(checks(findings), ["ordered-write"])

    def test_as_const_read_is_clean(self):
        findings = run("""
void f(const Tensor& x) {
  GSFL_EXPECT(n > 0);
  parallel_for(1, n, [&](std::size_t b, std::size_t e) {
    const float* p = std::as_const(x).data().data();
    use(p[b]);
  });
}
""")
        self.assertEqual(findings, [])

    def test_lambda_local_tensor_is_clean(self):
        findings = run("""
void f() {
  GSFL_EXPECT(n > 0);
  parallel_map(n, [&](std::size_t c) {
    Tensor local = make_tensor();
    local.data()[0] = 1.0f;
    return local;
  });
}
""")
        self.assertEqual(findings, [])

    def test_by_value_capture_is_clean(self):
        findings = run("""
void f(Tensor grad) {
  GSFL_EXPECT(n > 0);
  parallel_for(1, n, [grad](std::size_t b, std::size_t e) mutable {
    grad.data()[b] = 1.0f;
  });
}
""")
        self.assertEqual(findings, [])

    def test_suppression_round_trip(self):
        findings = run("""
void f(Tensor& grad) {
  GSFL_EXPECT(n > 0);
  parallel_for(1, n, [&](std::size_t b, std::size_t e) {
    // lint: ordered-write(each chunk writes its own disjoint row range)
    grad.data()[b] = 1.0f;
  });
}
""")
        self.assertEqual(findings, [])


class D3OrderedFoldTest(unittest.TestCase):
    def test_accumulate_into_captured_state(self):
        findings = run("""
void f() {
  double loss = 0.0;
  GSFL_EXPECT(n > 0);
  parallel_for(1, n, [&](std::size_t b, std::size_t e) {
    loss += compute(b, e);
  });
}
""")
        self.assertEqual(checks(findings), ["ordered-fold"])

    def test_lambda_local_outcome_is_clean(self):
        # The OrderedStateFold shape: accumulate into the index-owned slot,
        # fold after the join in index order.
        findings = run("""
void f() {
  GSFL_EXPECT(n > 0);
  auto outcomes = parallel_map(n, [&](std::size_t c) {
    Outcome out;
    out.chain.downlink += network().downlink_seconds(c);
    return out;
  });
  double total = 0.0;
  for (const auto& out : outcomes) total += out.chain.downlink;
}
""")
        self.assertEqual(findings, [])

    def test_induction_sliced_write_is_clean(self):
        # gb[c] += acc with c a lambda-local loop var: a disjoint slice write.
        findings = run("""
void f(float* gb) {
  GSFL_EXPECT(n > 0);
  parallel_for(1, n, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      float acc = compute(c);
      gb[c] += acc;
    }
  });
}
""")
        self.assertEqual(findings, [])

    def test_unordered_map_iteration(self):
        findings = run("""
void f() {
  std::unordered_map<int, double> by_client;
  double total = 0.0;
  for (const auto& kv : by_client) total += kv.second;
}
""")
        self.assertEqual(checks(findings), ["ordered-fold"])

    def test_ordered_map_iteration_is_clean(self):
        findings = run("""
void f() {
  std::map<int, double> by_client;
  double total = 0.0;
  for (const auto& kv : by_client) total += kv.second;
}
""")
        self.assertEqual(findings, [])


class D4HotPathMutexTest(unittest.TestCase):
    def test_lock_in_microkernel_file(self):
        findings = run("""
void sweep() {
  std::mutex m;
  std::lock_guard<std::mutex> lock(m);
}
""", path="src/tensor/microkernel_avx.cpp")
        self.assertEqual(checks(findings), ["hot-path-mutex"])

    def test_gemm_file_is_covered(self):
        findings = run("void f() { impl_->mutex.lock(); }",
                       path="src/tensor/gemm.cpp")
        self.assertEqual(checks(findings), ["hot-path-mutex"])

    def test_same_tokens_outside_hot_path_are_clean(self):
        findings = run("""
void f() {
  std::mutex m;
  std::lock_guard<std::mutex> lock(m);
}
""", path="src/common/thread_pool.cpp")
        self.assertEqual(findings, [])


class D5MissingPreconditionTest(unittest.TestCase):
    def test_unguarded_dispatch(self):
        findings = run("""
void f(std::size_t n) {
  parallel_for(1, n, [&](std::size_t b, std::size_t e) { work(b, e); });
}
""")
        self.assertEqual(checks(findings), ["missing-precondition"])

    def test_expect_before_dispatch_is_clean(self):
        findings = run("""
void f(std::size_t n) {
  GSFL_EXPECT_MSG(n > 0, "empty range");
  parallel_for(1, n, [&](std::size_t b, std::size_t e) { work(b, e); });
}
""")
        self.assertEqual(findings, [])

    def test_static_assert_counts(self):
        findings = run("""
template <typename Fn>
void f(std::size_t n, Fn fn) {
  static_assert(std::is_invocable_v<Fn&, std::size_t>);
  parallel_map(n, [&](std::size_t c) { return fn(c); });
}
""")
        self.assertEqual(findings, [])

    def test_expect_after_dispatch_does_not_count(self):
        findings = run("""
void f(std::size_t n) {
  parallel_for(1, n, [&](std::size_t b, std::size_t e) { work(b, e); });
  GSFL_EXPECT(n > 0);
}
""")
        self.assertEqual(checks(findings), ["missing-precondition"])

    def test_suppression_round_trip(self):
        findings = run("""
void f() {
  // lint: missing-precondition(no shape inputs; body validates at run time)
  lane.submit([&] { work(); });
}
""")
        self.assertEqual(findings, [])


class NamedLambdaTest(unittest.TestCase):
    def test_named_lambda_passed_to_dispatch_is_checked(self):
        # rows_task-style: defined as a variable, dispatched later.
        findings = run("""
void f() {
  double acc = 0.0;
  const auto rows_task = [&](std::size_t r0, std::size_t r1) {
    acc += sweep(r0, r1);
  };
  GSFL_EXPECT(m > 0);
  global_parallel_for(kRowGrain, m, rows_task);
}
""")
        self.assertEqual(checks(findings), ["ordered-fold"])

    def test_unreferenced_lambda_is_not_checked(self):
        findings = run("""
void f() {
  double acc = 0.0;
  const auto serial_task = [&](std::size_t r0, std::size_t r1) {
    acc += sweep(r0, r1);  // runs inline on this thread: ordering is fine
  };
  serial_task(0, m);
}
""")
        self.assertEqual(findings, [])


class SuppressionSyntaxTest(unittest.TestCase):
    def test_unknown_check_name_is_reported(self):
        findings = run("void f() {\n  // lint: no-such-check(whatever)\n}\n")
        self.assertEqual(checks(findings), ["bad-suppression"])

    def test_missing_reason_is_reported(self):
        findings = run("void f() {\n  // lint: ordered-write()\n}\n")
        self.assertEqual(checks(findings), ["bad-suppression"])

    def test_suppression_only_silences_its_own_check(self):
        findings = run("""
void f() {
  double loss = 0.0;
  GSFL_EXPECT(n > 0);
  parallel_for(1, n, [&](std::size_t b, std::size_t e) {
    // lint: ordered-write(wrong check name for this finding)
    loss += compute(b, e);
  });
}
""")
        self.assertEqual(checks(findings), ["ordered-fold"])


class RealTreeTest(unittest.TestCase):
    def test_repository_is_clean(self):
        # The tree itself must lint clean; registered separately as the
        # lint_concurrency_tree ctest, asserted here too so a standalone
        # run of this file gives the full verdict.
        rc = lint.main(["--engine=tokens",
                        os.path.join(REPO, "include"),
                        os.path.join(REPO, "src")])
        self.assertEqual(rc, 0)

    def test_list_checks(self):
        self.assertEqual(lint.main(["--list-checks"]), 0)

    def test_unknown_check_flag_is_usage_error(self):
        self.assertEqual(lint.main(["--check=bogus"]), 2)


if __name__ == "__main__":
    unittest.main()
