#!/usr/bin/env python3
"""Bench-regression gate: fail CI when a guarded speedup row sinks.

Usage: check_bench_regression.py BENCH_a.json [BENCH_b.json ...] bench/bench_floors.json

The floors file (always the last argument) maps a BenchJson row's "section"
to either a bare minimum "speedup" number, or an object

    {"floor": 1.6, "file": "BENCH_gemm.json"}

naming the bench output that must carry the row. A guarded section must be
present in one of the bench outputs (a renamed or dropped row fails loudly,
so the guard cannot rot silently) and its best measured speedup must clear
the floor. When a floors entry names a "file", that file must also be among
the BENCH inputs: a bench that crashed before emitting its JSON — or a CI
glob that silently matched nothing — fails with the missing *file* named,
instead of a confusing missing-*row* message (or, worse, no message at all
when every row of the absent file was guarded only by it).

Floor choice: well below locally measured ratios, because shared runners
are noisy AND some wins are hardware-dependent. dense1 kblock-vs-pr2
measures ~1.3-1.6x locally -> floor 1.10. interleaved-vs-pr3 measures
~1.15x locally, but the effect comes from dense1's 1 MB packed panel
overflowing the private cache — on runners with 2 MB+ of L2 the true ratio
is legitimately ~1.0 — so its floor (0.90) only catches the interleaved
schedule regressing to meaningfully *worse* than the up-front pack, which
is hardware-independent; the cache win itself is asserted by the local
acceptance run, not by CI. sfl_round_straggler pipelined-vs-barriered
measures ~1.1x serial / ~1.4-1.7x wide locally (eager-fold overlap +
fold-while-warm locality) -> floor 1.03: the pipelined schedule must beat
the barriered round on the straggler scenario, with margin for runner
noise. dense1 int8-vs-f32 measures ~2x locally under AVX-512-VNNI -> floor
1.60 (the issue's acceptance bar; VNNI runners clear it with margin, and
the floor is only meaningful on AVX-512 hardware — see docs/compute.md).
The quant gates encode accuracy parity (1 + accuracy delta vs f32; floor
0.995 = within 0.5 pp) and wire compression (f32 bytes / 8-bit bytes;
floor 3.5 leaves room for the codec header on small smashed tensors).
The serving gates compare the frozen model (persistent packed panels, BN
folded, dropout elided) against a naive eval loop that re-packs every
weight per request: p50/p99/throughput measure ~2.6x/~2.0x/~2.5x locally
at their best stream counts -> floors 1.30/1.10/1.30. p50 and throughput
are dominated by the elided per-request packing and stay well clear on any
hardware; p99 is scheduler-noise-bound under stream oversubscription, so
its floor only asserts the frozen tail never regresses past the naive one.
gsfl_straggler adaptive-vs-static compares *simulated* seconds-to-target
(greedy controller vs static cut + equal shares on the straggler world),
so the measured ~1.34x is deterministic across hosts; floor 1.15 is the
issue's acceptance bar and only real controller/simulator changes move it.
"""
import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    rows = []
    provided = set()
    for bench_path in sys.argv[1:-1]:
        provided.add(os.path.basename(bench_path))
        with open(bench_path, encoding="utf-8") as f:
            rows.extend(json.load(f))
    with open(sys.argv[-1], encoding="utf-8") as f:
        floors = json.load(f)

    best = {}
    for row in rows:
        section = row["section"]
        if section in floors:
            best[section] = max(best.get(section, 0.0), row["speedup"])

    failed = False
    for section, entry in sorted(floors.items()):
        if isinstance(entry, dict):
            floor = entry["floor"]
            expected_file = entry.get("file")
        else:
            floor = entry
            expected_file = None
        if expected_file is not None and expected_file not in provided:
            print(f"FAIL {section}: guarded bench file {expected_file} was "
                  f"never emitted (inputs: {', '.join(sorted(provided))})")
            failed = True
        elif section not in best:
            print(f"FAIL {section}: row missing from bench output")
            failed = True
        elif best[section] < floor:
            print(f"FAIL {section}: speedup {best[section]:.3f} "
                  f"< floor {floor:.3f}")
            failed = True
        else:
            print(f"ok   {section}: speedup {best[section]:.3f} "
                  f">= floor {floor:.3f}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
