#!/usr/bin/env python3
"""Bench-regression gate: fail CI when a guarded speedup row sinks.

Usage: check_bench_regression.py BENCH_a.json [BENCH_b.json ...] bench/bench_floors.json

The floors file (always the last argument) maps a BenchJson row's "section"
to the minimum acceptable "speedup". A guarded section must be present in
one of the bench outputs (a renamed or dropped row fails loudly, so the
guard cannot rot silently) and its best measured speedup must clear the
floor.

Floor choice: well below locally measured ratios, because shared runners
are noisy AND some wins are hardware-dependent. dense1 kblock-vs-pr2
measures ~1.3-1.6x locally -> floor 1.10. interleaved-vs-pr3 measures
~1.15x locally, but the effect comes from dense1's 1 MB packed panel
overflowing the private cache — on runners with 2 MB+ of L2 the true ratio
is legitimately ~1.0 — so its floor (0.90) only catches the interleaved
schedule regressing to meaningfully *worse* than the up-front pack, which
is hardware-independent; the cache win itself is asserted by the local
acceptance run, not by CI. sfl_round_straggler pipelined-vs-barriered
measures ~1.1x serial / ~1.4-1.7x wide locally (eager-fold overlap +
fold-while-warm locality) -> floor 1.03: the pipelined schedule must beat
the barriered round on the straggler scenario, with margin for runner
noise.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    rows = []
    for bench_path in sys.argv[1:-1]:
        with open(bench_path, encoding="utf-8") as f:
            rows.extend(json.load(f))
    with open(sys.argv[-1], encoding="utf-8") as f:
        floors = json.load(f)

    best = {}
    for row in rows:
        section = row["section"]
        if section in floors:
            best[section] = max(best.get(section, 0.0), row["speedup"])

    failed = False
    for section, floor in sorted(floors.items()):
        if section not in best:
            print(f"FAIL {section}: row missing from bench output")
            failed = True
        elif best[section] < floor:
            print(f"FAIL {section}: speedup {best[section]:.3f} "
                  f"< floor {floor:.3f}")
            failed = True
        else:
            print(f"ok   {section}: speedup {best[section]:.3f} "
                  f">= floor {floor:.3f}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
