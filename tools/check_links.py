#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Usage: check_links.py [file-or-dir ...]   (default: README.md docs/)

Scans markdown files for inline links [text](target) and validates every
*relative* target:
  - a path must exist on disk (resolved against the linking file's dir);
  - a #fragment must match a heading's GitHub-style anchor slug in the
    target file (or the same file for bare #fragment links).
External schemes (http/https/mailto) are not fetched — CI must not depend
on the network — only relative cross-links are guarded, which is what rots
when files move. Exits 1 listing every broken link.
"""
import os
import re
import sys

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def heading_anchor(text: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces->dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", text.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def md_anchors(path: str) -> set:
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(heading_anchor(m.group(1)))
    return anchors


def md_links(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for number, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield number, m.group(1)


def collect_files(args):
    targets = args or ["README.md", "docs"]
    files = []
    for t in targets:
        if os.path.isdir(t):
            for root, _, names in os.walk(t):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md"))
        elif t.endswith(".md"):
            files.append(t)
    return sorted(set(files))


def main() -> int:
    errors = []
    for md in collect_files(sys.argv[1:]):
        base = os.path.dirname(md)
        for line, target in md_links(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # external scheme
                continue
            path, _, fragment = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, path)) if path else md
            if not os.path.exists(resolved):
                errors.append(f"{md}:{line}: missing file: {target}")
                continue
            if fragment and resolved.endswith(".md"):
                if heading_anchor(fragment) not in md_anchors(resolved):
                    errors.append(f"{md}:{line}: missing anchor: {target}")
    for e in errors:
        print(f"FAIL {e}")
    if not errors:
        print("ok   all relative markdown links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
