#!/usr/bin/env python3
"""Static lint for the GSFL concurrency determinism contract.

Every perf layer in this repo (pipelined rounds, pack-ahead packing, int8
GEMM, frozen serving) rests on the contract documented in
docs/architecture.md and docs/parallelism.md: round RNG is pre-drawn at
submission in round order, folds walk outcomes in index order, parallel
lambdas write only index-owned state, and the GEMM hot path never blocks.
This tool makes those house rules machine-checked instead of
convention-checked. The check catalog (with one real before/after per rule)
lives in docs/static-analysis.md.

Checks (named, individually suppressible):

  D1 submit-time-rng      No Rng construction, std::random_device, rand()/
                          srand(), or std::chrono::*_clock::now() inside a
                          lambda passed to parallel_for / global_parallel_for
                          / parallel_map / AsyncLane::submit* /
                          submit_round_graph. Round randomness must be drawn
                          by the submitting thread, in round order; clocks
                          are nondeterministic inputs by definition.
                          (Per-index RNG owned by the lambda's index — e.g.
                          samplers_[c].next() — is the documented exception
                          and is not flagged: the stream is addressed by
                          index, not by schedule.)

  D2 ordered-write        No mutating Tensor access (.data() / .at*()) on a
                          by-reference capture inside a parallel lambda.
                          data() bumps the tensor version counter (PR 8) and
                          can invalidate shared packed panels mid-eval; reads
                          must go through std::as_const, and true ordered
                          writes must carry // lint: ordered-write(<reason>).

  D3 ordered-fold         Accumulation must be index-ordered: flags range-for
                          iteration over std::unordered_map/set variables
                          (iteration order is unspecified — any fold over it
                          drifts across platforms), and compound assignment
                          (+=, -=, ...) into captured state inside a parallel
                          lambda unless the write is sliced by a loop
                          variable local to the lambda (disjoint index-owned
                          writes are the house idiom).

  D4 hot-path-mutex       No mutex types or .lock() calls in the microkernel
                          / GEMM / im2col / quantize hot-path files. A lock
                          on the panel sweep serializes lanes behind a cache
                          miss; hot paths coordinate by data ownership only.

  D5 missing-precondition Every parallel dispatch site must be preceded, in
                          an enclosing function, by at least one
                          GSFL_EXPECT / GSFL_ENSURE / static_assert guard:
                          a parallel region built on an unchecked shape or
                          count turns a caller bug into a data race instead
                          of an exception on the submitting thread.

Suppression: a finding is silenced by an inline annotation on the same line
or the line directly above:

    // lint: <check-name>(<reason>)

The reason is mandatory — a bare name is reported as bad-suppression. The
annotation doubles as the authorization D2 requires for true ordered writes.

Engines: --engine=clang parses with libclang (python3-clang) when available;
--engine=tokens is the dependency-free regex/brace engine; --engine=auto
(default) prefers libclang and falls back. CI pins --engine=tokens so
findings never depend on the runner's clang packaging.

Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

CHECKS = {
    "submit-time-rng": "D1",
    "ordered-write": "D2",
    "ordered-fold": "D3",
    "hot-path-mutex": "D4",
    "missing-precondition": "D5",
}

# Call names whose lambda arguments execute on pool/lane threads.
DISPATCH_NAMES = (
    "global_parallel_for",
    "parallel_for",
    "parallel_map",
    "submit_after",
    "submit",
    "submit_round_graph",
)

# Files that are the compute hot path: locks are banned outright (D4).
HOT_PATH_PATTERN = re.compile(
    r"tensor/(microkernel|gemm|im2col|quantize)[^/]*$"
)

SUPPRESS_RE = re.compile(
    r"//\s*lint:\s*([\w-]+)\s*\(\s*([^)]*?)\s*\)"
)

PRECONDITION_RE = re.compile(
    r"\b(?:GSFL_EXPECT(?:_MSG)?|GSFL_ENSURE(?:_MSG)?|static_assert)\s*\("
)


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    check: str
    message: str

    @property
    def rule(self) -> str:
        return CHECKS.get(self.check, "??")


@dataclass
class Lambda:
    """One lambda literal: capture list, parameter list, and body span."""

    capture: str
    params: str
    body_begin: int  # offset of '{'
    body_end: int  # offset one past '}'


@dataclass
class SourceFile:
    path: str
    text: str  # raw contents
    code: str = ""  # comments/strings blanked, offsets preserved
    line_starts: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.code = strip_comments_and_strings(self.text)
        self.line_starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                self.line_starts.append(i + 1)

    def line_of(self, offset: int) -> int:
        """1-based line number containing `offset`."""
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving offsets
    (every replaced character becomes a space; newlines survive)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif ch == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif ch == '"':
            # Raw strings: R"delim( ... )delim"
            if i > 0 and text[i - 1] == "R":
                m = re.match(r'"([^(\s]*)\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    end = text.find(closer, i)
                    end = (end + len(closer)) if end != -1 else n
                    for j in range(i, end):
                        if text[j] != "\n":
                            out[j] = " "
                    i = end
                    continue
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                if i < n:
                    if text[i] != "\n":
                        out[i] = " "
                    i += 1
            i += 1
        elif ch == "'":
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                if i < n:
                    out[i] = " "
                    i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def match_forward(code: str, start: int, open_ch: str, close_ch: str) -> int:
    """Offset one past the bracket matching code[start] (which must be
    open_ch). Returns -1 when unbalanced."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def parse_lambda_at(code: str, bracket: int) -> Lambda | None:
    """Parse a lambda literal whose capture list starts at `bracket`."""
    cap_end = match_forward(code, bracket, "[", "]")
    if cap_end == -1:
        return None
    capture = code[bracket + 1:cap_end - 1]
    i = cap_end
    while i < len(code) and code[i].isspace():
        i += 1
    params = ""
    if i < len(code) and code[i] == "(":
        par_end = match_forward(code, i, "(", ")")
        if par_end == -1:
            return None
        params = code[i + 1:par_end - 1]
        i = par_end
    # Skip specifiers / trailing return type up to the body brace. A
    # trailing return may name templated types; no braces appear before the
    # body in well-formed code we care about.
    while i < len(code) and code[i] != "{":
        if code[i] == ";":
            return None  # declaration like `int x[3];` — not a lambda
        i += 1
    if i >= len(code):
        return None
    body_end = match_forward(code, i, "{", "}")
    if body_end == -1:
        return None
    return Lambda(capture=capture, params=params, body_begin=i,
                  body_end=body_end)


IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def lambda_starts_in(code: str, begin: int, end: int) -> list:
    """Offsets of '[' tokens that begin lambda literals inside
    code[begin:end] — a '[' whose previous non-space char is one of
    ( , { = : ; & or the span start."""
    starts = []
    i = begin
    while i < end:
        if code[i] == "[":
            j = i - 1
            while j >= begin and code[j].isspace():
                j -= 1
            prev = code[j] if j >= begin else "("
            if prev in "(,{=:;&|":
                starts.append(i)
                closed = match_forward(code, i, "[", "]")
                i = closed if closed != -1 else i + 1
                continue
        i += 1
    return starts


def named_lambdas(code: str) -> dict:
    """name -> Lambda for `auto name = [...] ... {...};` definitions."""
    out = {}
    for m in re.finditer(r"\bauto\s+(\w+)\s*=\s*\[", code):
        lam = parse_lambda_at(code, m.end() - 1)
        if lam is not None:
            out[m.group(1)] = lam
    return out


@dataclass
class Dispatch:
    """One parallel dispatch call site."""

    name: str
    offset: int  # offset of the call name
    args_begin: int
    args_end: int


def find_dispatches(code: str) -> list:
    out = []
    for name in DISPATCH_NAMES:
        for m in re.finditer(r"\b" + name + r"\s*\(", code):
            # `.submit(` and `.submit_after(` are AsyncLane methods; the bare
            # names also appear as Trainer::submit_round etc. — require the
            # exact name, which the \b handles, but skip definitions
            # (`auto submit(` / `void submit(`): a definition is preceded by
            # a type token, a call by . -> :: ( , = & or statement start.
            j = m.start() - 1
            while j >= 0 and code[j].isspace():
                j -= 1
            prev = code[j] if j >= 0 else ";"
            if name in ("submit", "submit_after") and prev not in ".:>":
                continue  # method call only (x.submit / lane->submit / ::)
            if prev.isalnum() or prev == "_":
                continue  # `void parallel_for(` definition / declaration
            open_paren = m.end() - 1
            close = match_forward(code, open_paren, "(", ")")
            if close == -1:
                continue
            out.append(Dispatch(name=name, offset=m.start(),
                                args_begin=open_paren + 1,
                                args_end=close - 1))
    out.sort(key=lambda d: d.offset)
    return out


# --- declaration heuristics -------------------------------------------------


def body_locals(body: str, params: str) -> set:
    """Names declared inside a lambda body or its parameter list (regex
    heuristic: good enough for the house style the lint enforces)."""
    names = set()
    for m in re.finditer(r"(\w+)\s*(?:,|$|\))", params):
        names.add(m.group(1))
    # `Type name =`, `Type name;`, `Type name(`, `Type name{`: a word (or
    # template/pointer/ref tail) followed by a plain identifier.
    decl = re.compile(
        r"[\w>\]&*]\s+[&*]?(\w+)\s*(?:=(?!=)|;|\{|\()")
    for m in decl.finditer(body):
        names.add(m.group(1))
    # structured bindings: auto [a, b] = ...
    for m in re.finditer(r"\bauto\s*&?\s*\[([^\]]*)\]", body):
        for name in re.findall(r"\w+", m.group(1)):
            names.add(name)
    # range-for: for (const auto& x : ...)
    for m in re.finditer(r"for\s*\(\s*(?:const\s+)?[\w:<>,\s*&\[\]]*?"
                         r"[&*\s](\w+)\s*[:=]", body):
        names.add(m.group(1))
    return names


def loop_vars(body: str) -> set:
    """Induction variables of for-loops inside the body — indexing a
    captured pointer by one of these is the disjoint-slice idiom."""
    out = set()
    for m in re.finditer(r"for\s*\(\s*(?:const\s+)?[\w:<>\s]*?[\s&*](\w+)"
                         r"\s*=\s*[^;]*;", body):
        out.add(m.group(1))
    for m in re.finditer(r"for\s*\(\s*(?:const\s+)?[\w:<>,\s*&]*?[\s&*](\w+)"
                         r"\s*:\s*", body):
        out.add(m.group(1))
    return out


def capture_is_by_ref(capture: str, name: str) -> bool:
    """Whether `name` reaches the lambda by reference: an explicit &name
    capture, or a default [&] capture that does not shadow it by value."""
    entries = [e.strip() for e in capture.split(",") if e.strip()]
    default_ref = any(e == "&" for e in entries)
    for e in entries:
        if e == "&" + name:
            return True
        if re.fullmatch(rf"{re.escape(name)}(\s*=.*)?", e):
            return False  # by-value (possibly init-capture)
    return default_ref


# --- the checks -------------------------------------------------------------

D1_PATTERNS = (
    (re.compile(r"\bstd::random_device\b|\brandom_device\s+\w"),
     "std::random_device inside a parallel lambda"),
    (re.compile(r"(?<![\w.])s?rand\s*\("),
     "rand()/srand() inside a parallel lambda"),
    (re.compile(r"\b\w*_clock\s*::\s*now\s*\("),
     "std::chrono clock read inside a parallel lambda"),
    (re.compile(r"\bRng\b\s*\w*\s*[({]"),
     "Rng constructed inside a parallel lambda"),
    (re.compile(r"\.\s*fork\s*\("),
     "RNG stream forked inside a parallel lambda"),
)


def check_lambda_body(src: SourceFile, lam: Lambda,
                      findings: list) -> None:
    body = src.code[lam.body_begin:lam.body_end]
    base = lam.body_begin

    # D1: submit-time RNG / clock reads.
    for pattern, what in D1_PATTERNS:
        for m in pattern.finditer(body):
            findings.append(Finding(
                src.path, src.line_of(base + m.start()), "submit-time-rng",
                f"{what} — pre-draw round RNG (and timestamps) on the "
                "submitting thread, in round order"))

    locals_ = body_locals(body, lam.params)
    inductions = loop_vars(body)

    # D2: mutating Tensor access on a by-reference capture.
    for m in re.finditer(r"\b(\w+)\s*(?:\.|->)\s*(data|at\w*)\s*\(", body):
        name, method = m.group(1), m.group(2)
        if name in locals_:
            continue
        # std::as_const(x).data() is the sanctioned read path.
        prefix = body[max(0, m.start() - 64):m.start()]
        if re.search(r"as_const\s*\(\s*$", prefix):
            continue
        if re.search(rf"as_const\s*\(\s*{re.escape(name)}\s*\)\s*$", prefix):
            continue
        if not capture_is_by_ref(lam.capture, name):
            continue
        findings.append(Finding(
            src.path, src.line_of(base + m.start()), "ordered-write",
            f"non-const Tensor::{method}() on by-reference capture "
            f"'{name}' inside a parallel lambda — it bumps the version "
            "counter and can invalidate shared packed panels; read through "
            "std::as_const or annotate // lint: ordered-write(<reason>)"))

    # D3b: compound assignment into captured state.
    for m in re.finditer(
            r"(?:^|[;{}])\s*((?:\w+(?:\s*(?:\.|->)\s*\w+)*"
            r"(?:\s*\[[^\]]*\])?)+)\s*"
            r"(\+=|-=|\*=|/=|\|=|&=|\^=)", body):
        lhs = m.group(1)
        root = IDENT_RE.match(lhs.strip())
        if root is None:
            continue
        name = root.group(0)
        if name in locals_:
            continue
        if not capture_is_by_ref(lam.capture, name):
            continue
        index = re.search(r"\[([^\]]*)\]", lhs)
        if index and any(v in inductions
                         for v in re.findall(r"\w+", index.group(1))):
            continue  # disjoint slice write indexed by a body-local loop var
        findings.append(Finding(
            src.path, src.line_of(base + m.start(1)), "ordered-fold",
            f"'{m.group(2)}' into captured state '{name}' inside a parallel "
            "lambda — accumulate into an index-owned outcome slot and fold "
            "in index order after the join"))


def check_unordered_iteration(src: SourceFile, findings: list) -> None:
    """D3a: range-for over std::unordered_map/set variables."""
    containers = set()
    for m in re.finditer(
            r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*&?\s*"
            r"(\w+)\s*[;={(]", src.code):
        containers.add(m.group(1))
    if not containers:
        return
    for m in re.finditer(r"for\s*\([^();]*:\s*&?(\w+)\s*\)", src.code):
        if m.group(1) in containers:
            findings.append(Finding(
                src.path, src.line_of(m.start()), "ordered-fold",
                f"iteration over unordered container '{m.group(1)}' — "
                "iteration order is unspecified, so any fold over it is not "
                "reproducible; iterate a sorted index instead"))


def check_hot_path_mutex(src: SourceFile, findings: list) -> None:
    if not HOT_PATH_PATTERN.search(src.path.replace(os.sep, "/")):
        return
    for m in re.finditer(
            r"\bstd::(?:mutex|recursive_mutex|shared_mutex|lock_guard|"
            r"unique_lock|scoped_lock|shared_lock)\b"
            r"|\bMutexLock\b|(?<!\bgsfl::common::)\bMutex\b"
            r"|\.\s*lock\s*\(\s*\)", src.code):
        findings.append(Finding(
            src.path, src.line_of(m.start()), "hot-path-mutex",
            "lock primitive in a GEMM/microkernel hot-path file — hot paths "
            "coordinate by data ownership (Workspace keys, index-owned "
            "writes), never by blocking"))


def function_body_spans(code: str) -> list:
    """(begin, end) offset pairs of every `) ... {` body — functions and
    lambdas alike; D5 passes if ANY enclosing span holds a guard before the
    dispatch, so over-collection is safe."""
    spans = []
    for m in re.finditer(
            r"\)\s*(?:const\b|noexcept\b|override\b|mutable\b|"
            r"->\s*[\w:<>,&*\s]+?)*\s*\{", code):
        begin = m.end() - 1
        end = match_forward(code, begin, "{", "}")
        if end != -1:
            spans.append((begin, end))
    return spans


def check_preconditions(src: SourceFile, dispatches: list,
                        findings: list) -> None:
    spans = function_body_spans(src.code)
    for d in dispatches:
        enclosing = [s for s in spans if s[0] < d.offset <= s[1]]
        if not enclosing:
            continue  # file-scope macro oddity; nothing to anchor to
        ok = any(PRECONDITION_RE.search(src.code[b:d.offset])
                 for b, _ in enclosing)
        if not ok:
            findings.append(Finding(
                src.path, src.line_of(d.offset), "missing-precondition",
                f"parallel dispatch '{d.name}' with no GSFL_EXPECT/"
                "GSFL_ENSURE/static_assert guard earlier in the enclosing "
                "function — validate shapes and counts on the submitting "
                "thread, where the failure is an exception, not a race"))


# --- engines ----------------------------------------------------------------


def lint_file_tokens(path: str, text: str) -> list:
    src = SourceFile(path=path, text=text)
    findings: list = []

    dispatches = find_dispatches(src.code)
    named = named_lambdas(src.code)

    seen_bodies = set()
    for d in dispatches:
        # Lambda literals directly in the argument list.
        for off in lambda_starts_in(src.code, d.args_begin, d.args_end):
            lam = parse_lambda_at(src.code, off)
            if lam and lam.body_begin not in seen_bodies:
                seen_bodies.add(lam.body_begin)
                check_lambda_body(src, lam, findings)
        # Named lambdas referenced by identifier (possibly via std::move).
        for m in IDENT_RE.finditer(src.code[d.args_begin:d.args_end]):
            lam = named.get(m.group(0))
            if lam and lam.body_begin not in seen_bodies:
                seen_bodies.add(lam.body_begin)
                check_lambda_body(src, lam, findings)

    check_unordered_iteration(src, findings)
    check_hot_path_mutex(src, findings)
    check_preconditions(src, dispatches, findings)
    return findings


def try_libclang():
    """Return a configured clang.cindex module, or None."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def lint_file_clang(cindex, path: str, text: str) -> list:
    """libclang engine: same checks, with real AST spans for lambdas.

    The AST is used to locate lambda bodies passed (directly or through a
    variable) to dispatch calls; the per-body checks are shared with the
    token engine so both engines agree on what a violation is.
    """
    src = SourceFile(path=path, text=text)
    findings: list = []

    index = cindex.Index.create()
    tu = index.parse(path, args=["-std=c++20", "-Iinclude"],
                     unsaved_files=[(path, text)],
                     options=cindex.TranslationUnit.PARSE_INCOMPLETE)

    lambda_bodies = []

    def offset_of(loc) -> int:
        return loc.offset

    def visit(node, inside_dispatch: bool) -> None:
        is_dispatch = False
        if node.kind == cindex.CursorKind.CALL_EXPR and \
                node.spelling in DISPATCH_NAMES:
            is_dispatch = True
        if node.kind == cindex.CursorKind.LAMBDA_EXPR and inside_dispatch:
            ext = node.extent
            lambda_bodies.append((offset_of(ext.start), offset_of(ext.end)))
        for child in node.get_children():
            visit(child, inside_dispatch or is_dispatch)

    visit(tu.cursor, False)

    seen = set()
    for begin, _end in lambda_bodies:
        bracket = src.code.find("[", begin)
        if bracket == -1:
            continue
        lam = parse_lambda_at(src.code, bracket)
        if lam and lam.body_begin not in seen:
            seen.add(lam.body_begin)
            check_lambda_body(src, lam, findings)

    dispatches = find_dispatches(src.code)
    check_unordered_iteration(src, findings)
    check_hot_path_mutex(src, findings)
    check_preconditions(src, dispatches, findings)
    return findings


# --- suppression + reporting ------------------------------------------------


def apply_suppressions(text: str, path: str,
                       findings: list) -> tuple:
    """Drop findings annotated // lint: <check>(<reason>); malformed or
    unknown annotations become bad-suppression findings."""
    lines = text.splitlines()
    suppressed_checks: dict = {}
    extra: list = []
    for i, line in enumerate(lines, start=1):
        for m in SUPPRESS_RE.finditer(line):
            check, reason = m.group(1), m.group(2).strip()
            if check not in CHECKS:
                extra.append(Finding(
                    path, i, "bad-suppression",
                    f"unknown check '{check}' in lint suppression — one of: "
                    + ", ".join(sorted(CHECKS))))
                continue
            if not reason:
                extra.append(Finding(
                    path, i, "bad-suppression",
                    f"suppression for '{check}' has no reason — write "
                    f"// lint: {check}(<why this site is safe>)"))
                continue
            suppressed_checks.setdefault(check, set()).update({i, i + 1})
    kept = [f for f in findings
            if f.line not in suppressed_checks.get(f.check, set())]
    return kept, extra


def emit(finding: Finding, ci: bool) -> None:
    title = f"{finding.rule} {finding.check}"
    if ci:
        # GitHub Actions annotation: surfaces inline on the PR diff.
        message = finding.message.replace("\n", " ")
        print(f"::error file={finding.path},line={finding.line},"
              f"title={title}::{message}")
    else:
        print(f"{finding.path}:{finding.line}: [{title}] {finding.message}")


def collect_files(paths: list) -> list:
    exts = (".hpp", ".cpp", ".h", ".cc", ".cxx", ".hxx")
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(exts):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(p)
    return sorted(files)


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        description="GSFL determinism-contract concurrency lint "
                    "(checks D1-D5; see docs/static-analysis.md)")
    parser.add_argument("paths", nargs="*", default=["include", "src"],
                        help="files or directories to lint "
                             "(default: include src)")
    parser.add_argument("--ci", action="store_true",
                        help="emit GitHub Actions ::error annotations")
    parser.add_argument("--check", default="",
                        help="comma-separated subset of checks to run")
    parser.add_argument("--engine", choices=("auto", "clang", "tokens"),
                        default="auto",
                        help="parser engine (auto prefers libclang)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check catalog and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name, rule in sorted(CHECKS.items(), key=lambda kv: kv[1]):
            print(f"{rule}  {name}")
        return 0

    wanted = set(CHECKS)
    if args.check:
        wanted = {c.strip() for c in args.check.split(",") if c.strip()}
        unknown = wanted - set(CHECKS)
        if unknown:
            print(f"unknown check(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    cindex = None
    if args.engine in ("auto", "clang"):
        cindex = try_libclang()
        if cindex is None and args.engine == "clang":
            print("libclang (python3-clang) not available", file=sys.stderr)
            return 2

    paths = args.paths if args.paths else ["include", "src"]
    try:
        files = collect_files(paths)
    except FileNotFoundError as err:
        print(f"no such file or directory: {err}", file=sys.stderr)
        return 2

    total = 0
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as handle:
                text = handle.read()
        except OSError as err:
            print(f"cannot read {path}: {err}", file=sys.stderr)
            return 2
        if cindex is not None:
            findings = lint_file_clang(cindex, path, text)
        else:
            findings = lint_file_tokens(path, text)
        findings = [f for f in findings if f.check in wanted]
        findings, bad = apply_suppressions(text, path, findings)
        findings.extend(bad)
        findings.sort(key=lambda f: (f.line, f.check))
        for finding in findings:
            emit(finding, args.ci)
        total += len(findings)

    if total:
        print(f"\nlint_concurrency: {total} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
